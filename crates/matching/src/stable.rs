//! Stable marriage with incomplete preference lists (dummy entries) and
//! enumeration of all stable matchings.
//!
//! This is the engine behind the paper's Algorithms 1 and 2. The paper's
//! *dummy entry* ("no dispatch" / "no service") is modelled by *truncating*
//! each agent's preference list: everything an agent ranks below its dummy
//! is simply not in its list, so the agent would rather stay unmatched than
//! take it. Theorem 1 of the paper (a stable matching always exists, even
//! with `|R| ≠ |T|`) is the classical existence result for this model.
//!
//! Terminology: the proposing side ("passenger requests" in the paper) are
//! **proposers**; the reviewing side ("taxis") are **reviewers**.
//!
//! # Examples
//!
//! ```
//! use o2o_matching::StableInstance;
//!
//! // Two proposers, two reviewers; everyone accepts everyone.
//! let inst = StableInstance::new(
//!     vec![vec![0, 1], vec![0, 1]], // proposers' lists over reviewers
//!     vec![vec![1, 0], vec![0, 1]], // reviewers' lists over proposers
//! )?;
//! let m = inst.propose();
//! assert_eq!(m.proposer_partner(0), Some(1));
//! assert_eq!(m.proposer_partner(1), Some(0));
//! assert!(inst.is_stable(&m));
//! # Ok::<(), o2o_matching::PreferenceError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

/// Errors from constructing a [`StableInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreferenceError {
    /// A preference list referenced a partner index out of range.
    IndexOutOfRange {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The out-of-range entry.
        entry: usize,
    },
    /// A preference list contained the same partner twice.
    DuplicateEntry {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The repeated entry.
        entry: usize,
    },
}

impl fmt::Display for PreferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferenceError::IndexOutOfRange { side, agent, entry } => {
                write!(f, "{side} {agent} ranks out-of-range partner {entry}")
            }
            PreferenceError::DuplicateEntry { side, agent, entry } => {
                write!(f, "{side} {agent} ranks partner {entry} twice")
            }
        }
    }
}

impl std::error::Error for PreferenceError {}

/// A (possibly partial) matching between proposers and reviewers.
///
/// `None` means matched to the dummy (unserved request / undispatched
/// taxi).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matching {
    proposer_to_reviewer: Vec<Option<usize>>,
    reviewer_to_proposer: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching for the given side sizes.
    #[must_use]
    pub fn empty(proposers: usize, reviewers: usize) -> Self {
        Matching {
            proposer_to_reviewer: vec![None; proposers],
            reviewer_to_proposer: vec![None; reviewers],
        }
    }

    /// The reviewer matched to proposer `p`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn proposer_partner(&self, p: usize) -> Option<usize> {
        self.proposer_to_reviewer[p]
    }

    /// The proposer matched to reviewer `r`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn reviewer_partner(&self, r: usize) -> Option<usize> {
        self.reviewer_to_proposer[r]
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn matched_pairs(&self) -> usize {
        self.proposer_to_reviewer.iter().flatten().count()
    }

    /// Iterates over matched `(proposer, reviewer)` pairs in proposer
    /// order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.proposer_to_reviewer
            .iter()
            .enumerate()
            .filter_map(|(p, r)| r.map(|r| (p, r)))
    }

    /// Links proposer `p` with reviewer `r`, unlinking any previous
    /// partners of both.
    pub fn link(&mut self, p: usize, r: usize) {
        if let Some(old_r) = self.proposer_to_reviewer[p] {
            self.reviewer_to_proposer[old_r] = None;
        }
        if let Some(old_p) = self.reviewer_to_proposer[r] {
            self.proposer_to_reviewer[old_p] = None;
        }
        self.proposer_to_reviewer[p] = Some(r);
        self.reviewer_to_proposer[r] = Some(p);
    }

    /// Unlinks proposer `p` from its partner, if any.
    pub fn unlink_proposer(&mut self, p: usize) {
        if let Some(r) = self.proposer_to_reviewer[p].take() {
            self.reviewer_to_proposer[r] = None;
        }
    }
}

/// Ranks: `rank[a][b] = position of b in a's list`, or `NOT_RANKED`.
const NOT_RANKED: u32 = u32::MAX;

/// Rank table for one side: position of each partner in each agent's list.
///
/// The dense layout (`O(n·m)` memory, O(1) lookup with no hashing) suits
/// instances whose lists are long relative to the other side; the sparse
/// layout stores only ranked partners, so memory and construction are
/// `O(Σ list length)` — the point of threshold-pruned candidate
/// generation, where each list holds a handful of nearby partners out of
/// thousands. Both answer the same query: rank of `b` for agent `a`, or
/// [`NOT_RANKED`].
#[derive(Debug, Clone)]
enum Ranks {
    Dense(Vec<Vec<u32>>),
    Sparse(Vec<HashMap<usize, u32>>),
}

impl Ranks {
    #[inline]
    fn get(&self, a: usize, b: usize) -> u32 {
        match self {
            Ranks::Dense(rows) => rows[a][b],
            Ranks::Sparse(maps) => maps[a].get(&b).copied().unwrap_or(NOT_RANKED),
        }
    }
}

fn build_ranks(lists: &[Vec<usize>], other_side: usize) -> Vec<Vec<u32>> {
    lists
        .iter()
        .map(|list| {
            let mut ranks = vec![NOT_RANKED; other_side];
            for (pos, &b) in list.iter().enumerate() {
                ranks[b] = pos as u32;
            }
            ranks
        })
        .collect()
}

/// Builds sparse rank maps, validating as it goes (unlike the dense path,
/// which validates separately, this never allocates `other_side`-sized
/// scratch — construction stays `O(Σ list length)`).
fn build_sparse_ranks(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<Vec<HashMap<usize, u32>>, PreferenceError> {
    lists
        .iter()
        .enumerate()
        .map(|(agent, list)| {
            let mut ranks = HashMap::with_capacity(list.len());
            for (pos, &entry) in list.iter().enumerate() {
                if entry >= other_side {
                    return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
                }
                if ranks.insert(entry, pos as u32).is_some() {
                    return Err(PreferenceError::DuplicateEntry { side, agent, entry });
                }
            }
            Ok(ranks)
        })
        .collect()
}

fn validate(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<(), PreferenceError> {
    for (agent, list) in lists.iter().enumerate() {
        let mut seen = vec![false; other_side];
        for &entry in list {
            if entry >= other_side {
                return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
            }
            if seen[entry] {
                return Err(PreferenceError::DuplicateEntry { side, agent, entry });
            }
            seen[entry] = true;
        }
    }
    Ok(())
}

/// A stable-marriage instance with incomplete (dummy-truncated) lists.
///
/// Each proposer's list ranks the reviewers it would accept, most preferred
/// first; everything below the dummy is omitted. Reviewers' lists likewise.
/// A pair can match only if each appears in the other's list.
#[derive(Debug, Clone)]
pub struct StableInstance {
    proposer_lists: Vec<Vec<usize>>,
    reviewer_lists: Vec<Vec<usize>>,
    /// Rank of reviewer `r` for proposer `p` (dense or sparse layout).
    proposer_rank: Ranks,
    /// Rank of proposer `p` for reviewer `r` (dense or sparse layout).
    reviewer_rank: Ranks,
}

impl StableInstance {
    /// Builds an instance from truncated preference lists.
    ///
    /// `proposer_lists[p]` ranks reviewer indices; `reviewer_lists[r]`
    /// ranks proposer indices. The side sizes are inferred from the outer
    /// vector lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        validate(&proposer_lists, n_reviewers, "proposer")?;
        validate(&reviewer_lists, n_proposers, "reviewer")?;
        let proposer_rank = Ranks::Dense(build_ranks(&proposer_lists, n_reviewers));
        let reviewer_rank = Ranks::Dense(build_ranks(&reviewer_lists, n_proposers));
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Builds an instance with **sparse** (hashmap) rank tables.
    ///
    /// Semantically identical to [`StableInstance::new`] — every algorithm
    /// on the instance produces the same result — but construction time and
    /// memory are `O(Σ list length)` instead of `O(|proposers|·|reviewers|)`.
    /// This is what makes threshold-pruned candidate generation pay off:
    /// with truncated lists of a few dozen entries, a 2000×2000 frame never
    /// materialises four million rank slots.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new_sparse(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        let proposer_rank = Ranks::Sparse(build_sparse_ranks(
            &proposer_lists,
            n_reviewers,
            "proposer",
        )?);
        let reviewer_rank = Ranks::Sparse(build_sparse_ranks(
            &reviewer_lists,
            n_proposers,
            "reviewer",
        )?);
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Rank of reviewer `r` for proposer `p`, or [`NOT_RANKED`].
    #[inline]
    fn prank(&self, p: usize, r: usize) -> u32 {
        self.proposer_rank.get(p, r)
    }

    /// Rank of proposer `p` for reviewer `r`, or [`NOT_RANKED`].
    #[inline]
    fn rrank(&self, r: usize, p: usize) -> u32 {
        self.reviewer_rank.get(r, p)
    }

    /// Number of proposers.
    #[must_use]
    pub fn proposers(&self) -> usize {
        self.proposer_lists.len()
    }

    /// Number of reviewers.
    #[must_use]
    pub fn reviewers(&self) -> usize {
        self.reviewer_lists.len()
    }

    /// Proposer `p`'s truncated preference list.
    #[must_use]
    pub fn proposer_list(&self, p: usize) -> &[usize] {
        &self.proposer_lists[p]
    }

    /// Reviewer `r`'s truncated preference list.
    #[must_use]
    pub fn reviewer_list(&self, r: usize) -> &[usize] {
        &self.reviewer_lists[r]
    }

    /// The role-swapped instance (reviewers become proposers).
    ///
    /// Running [`StableInstance::propose`] on the swap yields the
    /// *reviewer-optimal* stable matching of `self` — the engine behind the
    /// taxi-optimal schedule NSTD-T.
    #[must_use]
    pub fn swapped(&self) -> StableInstance {
        StableInstance {
            proposer_lists: self.reviewer_lists.clone(),
            reviewer_lists: self.proposer_lists.clone(),
            proposer_rank: self.reviewer_rank.clone(),
            reviewer_rank: self.proposer_rank.clone(),
        }
    }

    /// Whether proposer `p` finds reviewer `r` acceptable (above dummy).
    #[must_use]
    pub fn proposer_accepts(&self, p: usize, r: usize) -> bool {
        self.prank(p, r) != NOT_RANKED
    }

    /// Whether reviewer `r` finds proposer `p` acceptable (above dummy).
    #[must_use]
    pub fn reviewer_accepts(&self, r: usize, p: usize) -> bool {
        self.rrank(r, p) != NOT_RANKED
    }

    /// The proposer-optimal stable matching — the paper's **Algorithm 1**.
    ///
    /// Deferred acceptance: each proposer proposes down its list; a
    /// reviewer holds its best acceptable proposal so far. Handles unequal
    /// side sizes and truncated lists; unmatched agents correspond to dummy
    /// partners (Theorem 1). Runs in `O(|R|·|T|)`.
    #[must_use]
    pub fn propose(&self) -> Matching {
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        let mut next = vec![0usize; self.proposers()];
        // Stack of proposers that still need to propose.
        let mut free: Vec<usize> = (0..self.proposers()).rev().collect();
        while let Some(p) = free.pop() {
            // Propose down p's list from its cursor.
            // Runs down p's list from its cursor; falling off the end
            // means p matches its dummy (unserved).
            while let Some(&r) = self.proposer_lists[p].get(next[p]) {
                next[p] += 1;
                let my_rank = self.rrank(r, p);
                if my_rank == NOT_RANKED {
                    continue; // r would rather stay undispatched
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        m.link(p, r);
                        break;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            m.link(p, r); // unlinks `held`
                            free.push(held);
                            break;
                        }
                    }
                }
            }
        }
        m
    }

    /// The reviewer-optimal stable matching (role-swapped proposals).
    #[must_use]
    pub fn reviewer_optimal(&self) -> Matching {
        let m = self.swapped().propose();
        Matching {
            proposer_to_reviewer: m.reviewer_to_proposer,
            reviewer_to_proposer: m.proposer_to_reviewer,
        }
    }

    /// All blocking pairs of `m` under the paper's Definition 1.
    ///
    /// `(p, r)` blocks when each finds the other acceptable and each
    /// prefers the other over its current partner (an unmatched agent —
    /// one holding its dummy — prefers every acceptable partner, since
    /// "dummies always prefer non-dummies").
    #[must_use]
    pub fn blocking_pairs(&self, m: &Matching) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for p in 0..self.proposers() {
            let p_current_rank = m.proposer_to_reviewer[p].map(|r| self.prank(p, r));
            for &r in &self.proposer_lists[p] {
                let pr = self.prank(p, r);
                let p_prefers = p_current_rank.is_none_or(|cur| pr < cur);
                if !p_prefers {
                    continue;
                }
                let rp = self.rrank(r, p);
                if rp == NOT_RANKED {
                    continue;
                }
                let r_prefers = match m.reviewer_to_proposer[r] {
                    None => true,
                    Some(held) => rp < self.rrank(r, held),
                };
                if r_prefers {
                    out.push((p, r));
                }
            }
        }
        out
    }

    /// Whether `m` is stable (no blocking pair) and consistent with the
    /// acceptability constraints (no one matched below their dummy).
    #[must_use]
    pub fn is_stable(&self, m: &Matching) -> bool {
        for (p, r) in m.pairs() {
            if !self.proposer_accepts(p, r) || !self.reviewer_accepts(r, p) {
                return false;
            }
        }
        self.blocking_pairs(m).is_empty()
    }

    /// The paper's **BreakDispatch** (Algorithm 2, Rules 1–3): break
    /// proposer `j`'s current match in `s` and chase the proposal chain to
    /// the *next* stable matching below `s` in the lattice.
    ///
    /// Returns `None` when BreakDispatch is unsuccessful:
    ///
    /// * Rule 3 — `j` is unserved in `s` (then it is unserved everywhere,
    ///   Theorem 2),
    /// * Rule 2 — the chain would involve a proposer with index `< j`,
    /// * Rule 1 fails — the chain ends without `j`'s old reviewer getting
    ///   a proposer it prefers over `j` (including any proposer falling to
    ///   its dummy).
    ///
    /// `s` must be a stable matching of this instance.
    #[must_use]
    pub fn break_dispatch(&self, s: &Matching, j: usize) -> Option<Matching> {
        let t = s.proposer_to_reviewer[j]?; // Rule 3
        let ghost_rank = self.rrank(t, j);
        let mut m = s.clone();
        m.unlink_proposer(j);
        let mut cur = j;
        // Resume proposing just below the broken partner.
        let mut pos = self.prank(j, t) as usize + 1;
        loop {
            let mut displaced: Option<usize> = None;
            while pos < self.proposer_lists[cur].len() {
                let r = self.proposer_lists[cur][pos];
                pos += 1;
                let my_rank = self.rrank(r, cur);
                if my_rank == NOT_RANKED {
                    continue;
                }
                if r == t && m.reviewer_to_proposer[t].is_none() {
                    // The broken reviewer holds j's ghost: it only accepts
                    // a strictly better proposer (Rule 1); on acceptance
                    // the chain terminates successfully.
                    if my_rank < ghost_rank {
                        m.link(cur, r);
                        debug_assert!(self.is_stable(&m));
                        return Some(m);
                    }
                    continue;
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        // An ordinarily-unmatched reviewer accepted: the
                        // chain ends but Rule 1 is unsatisfied (the broken
                        // reviewer t is left blocking with j).
                        return None;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            if held < j {
                                return None; // Rule 2
                            }
                            m.link(cur, r);
                            displaced = Some(held);
                            break;
                        }
                    }
                }
            }
            match displaced {
                Some(k) => {
                    // The displaced proposer resumes below its lost partner.
                    let lost = m.proposer_to_reviewer[cur].expect("just linked");
                    pos = self.prank(k, lost) as usize + 1;
                    cur = k;
                }
                // `cur` exhausted its list: it fell to its dummy, so the
                // chain cannot yield a stable matching (Theorem 3, case i).
                None => return None,
            }
        }
    }

    /// Enumerates **all** stable matchings — the paper's **Algorithm 2**.
    ///
    /// Starts from the proposer-optimal matching and recursively applies
    /// [`StableInstance::break_dispatch`] with non-decreasing proposer
    /// indices; by the paper's Theorem 4 every stable matching is produced
    /// exactly once. The first element is always the proposer-optimal
    /// matching.
    ///
    /// The number of stable matchings can be exponential in adversarial
    /// instances; `limit` caps how many are collected (`None` = no cap).
    #[must_use]
    pub fn enumerate_all(&self, limit: Option<usize>) -> Vec<Matching> {
        let cap = limit.unwrap_or(usize::MAX).max(1);
        let s0 = self.propose();
        let mut out = Vec::new();
        out.push(s0.clone());
        self.enumerate_rec(&s0, 0, cap, &mut out);
        out
    }

    fn enumerate_rec(&self, s: &Matching, j_min: usize, cap: usize, out: &mut Vec<Matching>) {
        for j in j_min..self.proposers() {
            if out.len() >= cap {
                return;
            }
            if let Some(next) = self.break_dispatch(s, j) {
                out.push(next.clone());
                self.enumerate_rec(&next, j, cap, out);
            }
        }
    }

    /// Rank (0 = favourite) of reviewer `r` in proposer `p`'s list, or
    /// `None` when `r` is below `p`'s dummy.
    #[must_use]
    pub fn proposer_rank_of(&self, p: usize, r: usize) -> Option<u32> {
        let rank = self.prank(p, r);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Rank (0 = favourite) of proposer `p` in reviewer `r`'s list, or
    /// `None` when `p` is below `r`'s dummy.
    #[must_use]
    pub fn reviewer_rank_of(&self, r: usize, p: usize) -> Option<u32> {
        let rank = self.rrank(r, p);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Egalitarian cost of a matching: the sum over matched pairs of both
    /// sides' ranks (0 = everyone got their favourite).
    ///
    /// # Panics
    ///
    /// Panics if `m` matches a pair outside the acceptability lists.
    #[must_use]
    pub fn egalitarian_cost(&self, m: &Matching) -> u64 {
        m.pairs()
            .map(|(p, r)| {
                let pr = self.proposer_rank_of(p, r).expect("acceptable pair") as u64;
                let rr = self.reviewer_rank_of(r, p).expect("acceptable pair") as u64;
                pr + rr
            })
            .sum()
    }

    /// The egalitarian stable matching: among `all` (e.g. from
    /// [`StableInstance::enumerate_all`]), the one minimising
    /// [`StableInstance::egalitarian_cost`] — the fairest compromise
    /// between the passenger-optimal and taxi-optimal extremes.
    ///
    /// Returns `None` when `all` is empty.
    #[must_use]
    pub fn egalitarian<'a>(&self, all: &'a [Matching]) -> Option<&'a Matching> {
        all.iter().min_by_key(|m| self.egalitarian_cost(m))
    }

    /// The (lower) median stable matching assembled from `all` stable
    /// matchings: every proposer is assigned the median of its partners
    /// across the set (Teo–Sethuraman: this selection is itself a stable
    /// matching). With dummy entries the matched set is constant across
    /// `all` (rural hospitals), so the median is well defined per agent.
    ///
    /// Returns `None` when `all` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the matchings in `all` are not all stable matchings of
    /// this instance (their matched sets must agree).
    #[must_use]
    pub fn median_stable_matching(&self, all: &[Matching]) -> Option<Matching> {
        let first = all.first()?;
        let mut out = Matching::empty(self.proposers(), self.reviewers());
        for p in 0..self.proposers() {
            if first.proposer_partner(p).is_none() {
                continue;
            }
            let mut partners: Vec<usize> = all
                .iter()
                .map(|m| {
                    m.proposer_partner(p)
                        .expect("matched set is invariant across stable matchings")
                })
                .collect();
            partners.sort_by_key(|&r| self.prank(p, r));
            let median = partners[(partners.len() - 1) / 2];
            out.link(p, median);
        }
        debug_assert!(self.is_stable(&out));
        Some(out)
    }

    /// Exhaustive stable-matching enumeration by brute force.
    ///
    /// Exponential — intended for validating [`StableInstance::enumerate_all`]
    /// on small instances (tests, ablations). Results are in an unspecified
    /// order.
    #[must_use]
    pub fn enumerate_brute_force(&self) -> Vec<Matching> {
        let mut out = Vec::new();
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        self.brute_rec(0, &mut m, &mut out);
        out
    }

    fn brute_rec(&self, p: usize, m: &mut Matching, out: &mut Vec<Matching>) {
        if p == self.proposers() {
            if self.is_stable(m) {
                out.push(m.clone());
            }
            return;
        }
        // p stays unmatched…
        self.brute_rec(p + 1, m, out);
        // …or takes any mutually-acceptable free reviewer.
        for &r in &self.proposer_lists[p] {
            if m.reviewer_to_proposer[r].is_none() && self.reviewer_accepts(r, p) {
                m.link(p, r);
                self.brute_rec(p + 1, m, out);
                m.unlink_proposer(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn classic_3x3() -> StableInstance {
        // A classic instance with multiple stable matchings.
        StableInstance::new(
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
            vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn propose_is_stable_on_classic() {
        let inst = classic_3x3();
        let m = inst.propose();
        assert!(inst.is_stable(&m));
        // Everyone gets their first choice (proposer-optimal).
        assert_eq!(m.proposer_partner(0), Some(0));
        assert_eq!(m.proposer_partner(1), Some(1));
        assert_eq!(m.proposer_partner(2), Some(2));
    }

    #[test]
    fn reviewer_optimal_differs_on_classic() {
        let inst = classic_3x3();
        let m = inst.reviewer_optimal();
        assert!(inst.is_stable(&m));
        // Each reviewer gets its first choice.
        assert_eq!(m.reviewer_partner(0), Some(1));
        assert_eq!(m.reviewer_partner(1), Some(2));
        assert_eq!(m.reviewer_partner(2), Some(0));
    }

    #[test]
    fn classic_has_three_stable_matchings() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        let brute = inst.enumerate_brute_force();
        assert_eq!(brute.len(), 3);
        let set_a: HashSet<_> = all.into_iter().collect();
        let set_b: HashSet<_> = brute.into_iter().collect();
        assert_eq!(set_a, set_b);
    }

    #[test]
    fn unequal_sides_leave_someone_unmatched() {
        // 3 proposers, 1 reviewer.
        let inst =
            StableInstance::new(vec![vec![0], vec![0], vec![0]], vec![vec![2, 0, 1]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 1);
        assert_eq!(m.reviewer_partner(0), Some(2));
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn truncated_lists_respect_dummies() {
        // Proposer 0 would rather stay alone than take reviewer 1.
        // Reviewer 0 would rather stay alone than take proposer 0.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = StableInstance::new(vec![], vec![]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
        assert_eq!(inst.enumerate_all(None).len(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = StableInstance::new(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
    }

    #[test]
    fn rejects_duplicates() {
        let err = StableInstance::new(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn blocking_pairs_detects_instability() {
        let inst = classic_3x3();
        let mut m = Matching::empty(3, 3);
        // (0, 1) blocks: proposer 0 prefers reviewer 1 over 2, and
        // reviewer 1 prefers proposer 0 over its partner 1.
        m.link(0, 2);
        m.link(1, 1);
        m.link(2, 0);
        assert!(!inst.is_stable(&m));
        assert!(inst.blocking_pairs(&m).contains(&(0, 1)));
    }

    #[test]
    fn one_sided_acceptance_cannot_match() {
        // Proposer 0 accepts reviewer 0, but reviewer 0 accepts nobody.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.proposer_partner(0), None);
        // And a forced link is flagged as not stable.
        let mut bad = Matching::empty(1, 1);
        bad.link(0, 0);
        assert!(!inst.is_stable(&bad));
    }

    #[test]
    fn break_dispatch_on_unserved_is_rule3_none() {
        let inst = StableInstance::new(vec![vec![0], vec![0]], vec![vec![0, 1]]).unwrap();
        let s = inst.propose();
        assert_eq!(s.proposer_partner(1), None);
        assert!(inst.break_dispatch(&s, 1).is_none());
    }

    #[test]
    fn matching_link_unlinks_previous() {
        let mut m = Matching::empty(2, 2);
        m.link(0, 0);
        m.link(1, 0); // steals reviewer 0
        assert_eq!(m.proposer_partner(0), None);
        assert_eq!(m.reviewer_partner(0), Some(1));
        m.link(1, 1); // moves proposer 1
        assert_eq!(m.reviewer_partner(0), None);
        assert_eq!(m.matched_pairs(), 1);
    }

    #[test]
    fn egalitarian_cost_and_selection() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        // Proposer-optimal: everyone rank 0 for proposers, rank 2 for
        // reviewers → cost 6. Reviewer-optimal symmetric. The middle
        // (cyclic) matching has rank 1 everywhere → cost 6 as well.
        let costs: Vec<u64> = all.iter().map(|m| inst.egalitarian_cost(m)).collect();
        assert!(costs.iter().all(|&c| c == 6));
        assert!(inst.egalitarian(&all).is_some());
        assert!(inst.egalitarian(&[]).is_none());
    }

    #[test]
    fn median_of_classic_is_the_middle_matching() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        let median = inst.median_stable_matching(&all).unwrap();
        assert!(inst.is_stable(&median));
        // Each proposer's median partner is its 2nd choice.
        for p in 0..3 {
            let r = median.proposer_partner(p).unwrap();
            assert_eq!(inst.proposer_rank_of(p, r), Some(1));
        }
    }

    #[test]
    fn median_is_stable_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0x5E7A);
        for _ in 0..200 {
            let np = rng.gen_range(1..=6);
            let nr = rng.gen_range(1..=6);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_all(None);
            let median = inst.median_stable_matching(&all).unwrap();
            assert!(inst.is_stable(&median), "median must be stable");
            // The egalitarian matching is also stable and its cost is
            // minimal over the set.
            let egal = inst.egalitarian(&all).unwrap();
            let best = all.iter().map(|m| inst.egalitarian_cost(m)).min().unwrap();
            assert_eq!(inst.egalitarian_cost(egal), best);
        }
    }

    #[test]
    fn rank_accessors() {
        let inst = classic_3x3();
        assert_eq!(inst.proposer_rank_of(0, 0), Some(0));
        assert_eq!(inst.proposer_rank_of(0, 2), Some(2));
        assert_eq!(inst.reviewer_rank_of(0, 1), Some(0));
        let truncated = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        assert_eq!(truncated.reviewer_rank_of(0, 0), None);
    }

    /// Random instance with truncated lists on both sides.
    fn random_instance(rng: &mut StdRng, np: usize, nr: usize) -> StableInstance {
        let mut gen_side = |n: usize, m: usize| -> Vec<Vec<usize>> {
            (0..n)
                .map(|_| {
                    let mut all: Vec<usize> = (0..m).collect();
                    all.shuffle(rng);
                    let keep = rng.gen_range(0..=m);
                    all.truncate(keep);
                    all
                })
                .collect()
        };
        let p = gen_side(np, nr);
        let r = gen_side(nr, np);
        StableInstance::new(p, r).unwrap()
    }

    #[test]
    fn sparse_ranks_match_dense_on_random_instances() {
        // Same lists, sparse rank tables: every algorithm must return
        // identical results (not just equivalent ones).
        let mut rng = StdRng::seed_from_u64(0x5BA125E);
        for case in 0..200 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            let sparse = StableInstance::new_sparse(
                inst.proposer_lists.clone(),
                inst.reviewer_lists.clone(),
            )
            .unwrap();
            assert_eq!(inst.propose(), sparse.propose(), "case {case}");
            assert_eq!(
                inst.reviewer_optimal(),
                sparse.reviewer_optimal(),
                "case {case}"
            );
            let all = inst.enumerate_all(None);
            assert_eq!(all, sparse.enumerate_all(None), "case {case}");
            assert_eq!(
                inst.median_stable_matching(&all),
                sparse.median_stable_matching(&all),
                "case {case}"
            );
            for m in &all {
                assert_eq!(
                    inst.egalitarian_cost(m),
                    sparse.egalitarian_cost(m),
                    "case {case}"
                );
            }
        }
    }

    #[test]
    fn new_sparse_rejects_invalid_lists() {
        let err = StableInstance::new_sparse(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
        let err = StableInstance::new_sparse(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn enumeration_matches_brute_force_on_many_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        for case in 0..300 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let fast: Vec<_> = inst.enumerate_all(None);
            let fast_set: HashSet<_> = fast.iter().cloned().collect();
            assert_eq!(
                fast.len(),
                fast_set.len(),
                "case {case}: duplicates in enumeration"
            );
            let brute: HashSet<_> = inst.enumerate_brute_force().into_iter().collect();
            assert_eq!(fast_set, brute, "case {case}: sets differ");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Deferred acceptance always yields a stable matching.
        #[test]
        fn propose_always_stable(seed in any::<u64>(), np in 0usize..8, nr in 0usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let m = inst.propose();
            prop_assert!(inst.is_stable(&m));
        }

        /// Proposer-optimality: in every stable matching, each proposer does
        /// no better than under `propose()`.
        #[test]
        fn propose_is_proposer_optimal(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let best = inst.propose();
            for other in inst.enumerate_brute_force() {
                for p in 0..np {
                    let best_rank = best.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    let other_rank = other.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    match (best_rank, other_rank) {
                        (Some(b), Some(o)) => prop_assert!(b <= o),
                        // Theorem 2 / rural hospitals: matched status agrees.
                        (None, Some(_)) | (Some(_), None) => prop_assert!(
                            false, "matched sets differ across stable matchings"
                        ),
                        (None, None) => {}
                    }
                }
            }
        }

        /// Rural hospitals (paper's Theorem 2): every stable matching
        /// matches the same set of proposers and reviewers.
        #[test]
        fn rural_hospitals(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_brute_force();
            prop_assert!(!all.is_empty());
            let matched_p: HashSet<usize> = all[0].pairs().map(|(p, _)| p).collect();
            let matched_r: HashSet<usize> = all[0].pairs().map(|(_, r)| r).collect();
            for m in &all {
                prop_assert_eq!(
                    m.pairs().map(|(p, _)| p).collect::<HashSet<_>>(), matched_p.clone());
                prop_assert_eq!(
                    m.pairs().map(|(_, r)| r).collect::<HashSet<_>>(), matched_r.clone());
            }
        }

        /// Reviewer-optimal matching is the reviewer-best among all stable
        /// matchings.
        #[test]
        fn reviewer_optimal_is_best_for_reviewers(
            seed in any::<u64>(), np in 0usize..6, nr in 0usize..6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let ro = inst.reviewer_optimal();
            prop_assert!(inst.is_stable(&ro));
            for other in inst.enumerate_brute_force() {
                for r in 0..nr {
                    if let (Some(b), Some(o)) = (ro.reviewer_partner(r), other.reviewer_partner(r)) {
                        prop_assert!(inst.rrank(r, b) <= inst.rrank(r, o));
                    }
                }
            }
        }

        /// `enumerate_all` respects its cap and always includes the
        /// proposer-optimal matching first.
        #[test]
        fn enumerate_cap(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let capped = inst.enumerate_all(Some(2));
            prop_assert!(capped.len() <= 2);
            prop_assert_eq!(&capped[0], &inst.propose());
        }
    }
}
