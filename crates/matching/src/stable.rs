//! Stable marriage with incomplete preference lists (dummy entries) and
//! enumeration of all stable matchings.
//!
//! This is the engine behind the paper's Algorithms 1 and 2. The paper's
//! *dummy entry* ("no dispatch" / "no service") is modelled by *truncating*
//! each agent's preference list: everything an agent ranks below its dummy
//! is simply not in its list, so the agent would rather stay unmatched than
//! take it. Theorem 1 of the paper (a stable matching always exists, even
//! with `|R| ≠ |T|`) is the classical existence result for this model.
//!
//! Terminology: the proposing side ("passenger requests" in the paper) are
//! **proposers**; the reviewing side ("taxis") are **reviewers**.
//!
//! # Examples
//!
//! ```
//! use o2o_matching::StableInstance;
//!
//! // Two proposers, two reviewers; everyone accepts everyone.
//! let inst = StableInstance::new(
//!     vec![vec![0, 1], vec![0, 1]], // proposers' lists over reviewers
//!     vec![vec![1, 0], vec![0, 1]], // reviewers' lists over proposers
//! )?;
//! let m = inst.propose();
//! assert_eq!(m.proposer_partner(0), Some(1));
//! assert_eq!(m.proposer_partner(1), Some(0));
//! assert!(inst.is_stable(&m));
//! # Ok::<(), o2o_matching::PreferenceError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::budget::TimeBudget;
use o2o_obs as obs;

/// Errors from constructing a [`StableInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreferenceError {
    /// A preference list referenced a partner index out of range.
    IndexOutOfRange {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The out-of-range entry.
        entry: usize,
    },
    /// A preference list contained the same partner twice.
    DuplicateEntry {
        /// `"proposer"` or `"reviewer"`.
        side: &'static str,
        /// The agent whose list is invalid.
        agent: usize,
        /// The repeated entry.
        entry: usize,
    },
}

impl fmt::Display for PreferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PreferenceError::IndexOutOfRange { side, agent, entry } => {
                write!(f, "{side} {agent} ranks out-of-range partner {entry}")
            }
            PreferenceError::DuplicateEntry { side, agent, entry } => {
                write!(f, "{side} {agent} ranks partner {entry} twice")
            }
        }
    }
}

impl std::error::Error for PreferenceError {}

/// A (possibly partial) matching between proposers and reviewers.
///
/// `None` means matched to the dummy (unserved request / undispatched
/// taxi).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matching {
    proposer_to_reviewer: Vec<Option<usize>>,
    reviewer_to_proposer: Vec<Option<usize>>,
}

impl Matching {
    /// An empty matching for the given side sizes.
    #[must_use]
    pub fn empty(proposers: usize, reviewers: usize) -> Self {
        Matching {
            proposer_to_reviewer: vec![None; proposers],
            reviewer_to_proposer: vec![None; reviewers],
        }
    }

    /// The reviewer matched to proposer `p`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn proposer_partner(&self, p: usize) -> Option<usize> {
        self.proposer_to_reviewer[p]
    }

    /// The proposer matched to reviewer `r`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn reviewer_partner(&self, r: usize) -> Option<usize> {
        self.reviewer_to_proposer[r]
    }

    /// Number of matched pairs.
    #[must_use]
    pub fn matched_pairs(&self) -> usize {
        self.proposer_to_reviewer.iter().flatten().count()
    }

    /// Iterates over matched `(proposer, reviewer)` pairs in proposer
    /// order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.proposer_to_reviewer
            .iter()
            .enumerate()
            .filter_map(|(p, r)| r.map(|r| (p, r)))
    }

    /// Links proposer `p` with reviewer `r`, unlinking any previous
    /// partners of both.
    pub fn link(&mut self, p: usize, r: usize) {
        if let Some(old_r) = self.proposer_to_reviewer[p] {
            self.reviewer_to_proposer[old_r] = None;
        }
        if let Some(old_p) = self.reviewer_to_proposer[r] {
            self.proposer_to_reviewer[old_p] = None;
        }
        self.proposer_to_reviewer[p] = Some(r);
        self.reviewer_to_proposer[r] = Some(p);
    }

    /// Unlinks proposer `p` from its partner, if any.
    pub fn unlink_proposer(&mut self, p: usize) {
        if let Some(r) = self.proposer_to_reviewer[p].take() {
            self.reviewer_to_proposer[r] = None;
        }
    }

    /// Clears and resizes in place to an empty matching of the given side
    /// sizes, keeping the existing heap buffers when they are big enough.
    fn reset(&mut self, proposers: usize, reviewers: usize) {
        self.proposer_to_reviewer.clear();
        self.proposer_to_reviewer.resize(proposers, None);
        self.reviewer_to_proposer.clear();
        self.reviewer_to_proposer.resize(reviewers, None);
    }
}

/// Reusable working memory for the deferred-acceptance entry points.
///
/// A cold [`StableInstance::propose`] allocates its matching, cursor and
/// free-stack vectors per call; in a rolling dispatch loop those
/// allocations repeat every frame with the same shapes. Holding one
/// `MatchScratch` across frames and calling the `*_with` entry points
/// ([`StableInstance::propose_with`],
/// [`StableInstance::propose_seeded_with`],
/// [`StableInstance::reviewer_optimal_seeded_with`]) makes the
/// steady-state loop allocation-free: every buffer — including the
/// returned [`Matching`], once it is handed back via
/// [`MatchScratch::recycle`] — is reused. Results are **bit-identical**
/// to the scratch-free entry points for any (re)use pattern: the scratch
/// only changes where the working memory lives, never what is computed.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-proposer cursors into their preference lists.
    next: Vec<usize>,
    /// Stack of proposers that still need to propose.
    free: Vec<usize>,
    /// The pruned warm seed of the current call.
    seed: Vec<(usize, usize)>,
    /// Swapped-side seed buffer for the reviewer-optimal path.
    swap_seed: Vec<(usize, usize)>,
    /// Seed-pruning working state (held pairs + cycle-settling buffers).
    prune: PruneScratch,
    /// Recycled matchings whose buffers the next call reuses.
    pool: Vec<Matching>,
}

/// Working state for [`StableInstance::valid_warm_seed`]'s pruning
/// fixpoint, pooled inside [`MatchScratch`] so the warm path allocates
/// nothing once the buffers have grown to the steady-state shape.
#[derive(Debug, Clone, Default)]
struct PruneScratch {
    /// Proposer → held reviewer in the candidate seed state.
    p2r: Vec<Option<usize>>,
    /// Reviewer → held proposer in the candidate seed state.
    r2p: Vec<Option<usize>>,
    /// Per-proposer justifying holders (cycle-detection edges).
    justifiers: Vec<Vec<usize>>,
    /// Reverse edges of `justifiers`.
    dependents: Vec<Vec<usize>>,
    /// Unsettled-justifier counts for Kahn settling.
    pending: Vec<usize>,
    /// Settling worklist.
    settle: Vec<usize>,
    /// Which proposers have been topologically settled.
    settled: Vec<bool>,
}

impl MatchScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    #[must_use]
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// Returns a finished [`Matching`]'s buffers to the pool so the next
    /// `*_with` call can reuse them instead of allocating. Optional —
    /// dropping the matching instead merely costs the next call one
    /// allocation pair — and bounded, so a caller recycling more
    /// matchings than it takes cannot grow the pool without limit.
    pub fn recycle(&mut self, m: Matching) {
        // One proposer-side and one reviewer-side result per frame is the
        // steady-state shape; a little slack covers enumeration helpers.
        if self.pool.len() < 4 {
            self.pool.push(m);
        }
    }

    /// An empty matching of the given shape, reusing pooled buffers.
    fn take_matching(&mut self, proposers: usize, reviewers: usize) -> Matching {
        match self.pool.pop() {
            Some(mut m) => {
                m.reset(proposers, reviewers);
                m
            }
            None => Matching::empty(proposers, reviewers),
        }
    }
}

/// Result of a budget-bounded enumeration
/// ([`StableInstance::enumerate_budgeted`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Enumeration {
    /// The stable matchings collected before the walk ended. Never empty:
    /// the proposer-optimal matching is always first, whatever the budget.
    pub matchings: Vec<Matching>,
    /// BreakDispatch nodes explored (attempted `break_dispatch` calls).
    pub nodes: u64,
    /// Whether the budget (node cap or deadline) stopped the walk before
    /// it finished. Reaching an explicit `limit` does not count.
    pub truncated: bool,
}

/// Result of the anytime reviewer-optimal search
/// ([`StableInstance::reviewer_optimal_anytime`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimeSearch {
    /// The best stable matching found within the budget. Always stable;
    /// with an unlimited budget, exactly the reviewer-optimal matching.
    pub best: Matching,
    /// [`StableInstance::reviewer_cost`] of `best`.
    pub reviewer_cost: u64,
    /// The tightest proven lower bound on the reviewer cost of any
    /// stable matching. Starts as the instance-wide bound (each matched
    /// reviewer at its favourite mutually acceptable proposer); when the
    /// walk completes un-truncated, the exhaustive visit itself proves
    /// `best` optimal, so the bound is raised to `reviewer_cost` and
    /// [`AnytimeSearch::gap`] certifies `0`.
    pub lower_bound: u64,
    /// BreakDispatch nodes explored (attempted `break_dispatch` calls).
    pub nodes: u64,
    /// Whether the budget stopped the walk. `false` means the search is
    /// provably complete: either the tree was exhausted or the lower
    /// bound was met.
    pub truncated: bool,
}

impl AnytimeSearch {
    /// The measured optimality gap: how far `best`'s reviewer cost sits
    /// above the proven lower bound. `0` certifies reviewer-optimality;
    /// a positive gap bounds how much better the true optimum could be
    /// (it is often smaller, since the bound itself may be unattainable).
    #[must_use]
    pub fn gap(&self) -> u64 {
        self.reviewer_cost - self.lower_bound
    }
}

/// The "not in this agent's list" sentinel: `rank[a][b] = position of b
/// in a's list`, or `NOT_RANKED` when `a` would rather keep its dummy
/// than take `b`. Every rank layout answers lookups with this same
/// sentinel, and every algorithm in this module treats it as "rejected
/// below the dummy" — it is the single source of truth for
/// (un)acceptability.
const NOT_RANKED: u32 = u32::MAX;

/// The side names used in every [`PreferenceError`], shared by all
/// construction paths so dense, CSR and reference-hashmap validation
/// report identically-worded errors.
const PROPOSER_SIDE: &str = "proposer";
/// See [`PROPOSER_SIDE`].
const REVIEWER_SIDE: &str = "reviewer";

/// Rank table for one side: position of each partner in each agent's
/// list, or [`NOT_RANKED`].
///
/// **Layout selection rule.** [`StableInstance::new`] builds `Dense`:
/// `O(proposers·reviewers)` memory, O(1) indexed lookup — right when
/// lists are long relative to the other side (the paper's full-preference
/// frames). [`StableInstance::new_sparse`] builds `Csr`: memory and
/// construction are `O(Σ list length)` — the point of threshold-pruned
/// candidate generation, where each list holds a handful of nearby
/// partners out of thousands. Within `Csr`, rows whose candidate count
/// reaches [`CsrRanks::DENSE_ROW_DIVISOR`]ths of the partner side get a
/// dense-row fast path, so degenerate everybody-ranks-everybody frames
/// degrade to O(1) lookups instead of `log` searches. `Hashmap` is the
/// pre-CSR reference layout, kept for the equivalence suite and the
/// rank-lookup micro-benchmarks ([`StableInstance::new_sparse_reference`]);
/// nothing on the hot path builds it.
///
/// All three layouts answer the same query with the same sentinel, so
/// every algorithm on [`StableInstance`] is layout-oblivious and
/// bit-identical across layouts.
#[derive(Debug, Clone)]
enum Ranks {
    Dense(Vec<Vec<u32>>),
    Csr(CsrRanks),
    Hashmap(Vec<HashMap<usize, u32>>),
}

impl Ranks {
    #[inline]
    fn get(&self, a: usize, b: usize) -> u32 {
        match self {
            Ranks::Dense(rows) => rows[a][b],
            Ranks::Csr(csr) => csr.get(a, b),
            Ranks::Hashmap(maps) => maps[a].get(&b).copied().unwrap_or(NOT_RANKED),
        }
    }
}

/// Flat compressed-sparse-row rank table.
///
/// One contiguous `(partner, rank)` pool sorted by partner within each
/// row, addressed by a row-offset table — no per-agent allocations, no
/// hashing, and lookups stream through a row slice that is contiguous in
/// cache. Rows dense enough to make searching pointless (at least
/// `1/DENSE_ROW_DIVISOR` of the partner side) are instead materialised
/// in a shared dense pool and answered by direct indexing, which also
/// skips their build-time sort.
#[derive(Debug, Clone)]
struct CsrRanks {
    /// Row start offsets into `partners`/`ranks`; `rows + 1` entries.
    offsets: Vec<u32>,
    /// Ranked partner indices, sorted ascending within each row.
    partners: Vec<u32>,
    /// `ranks[k]` = rank of `partners[k]` in that row's list.
    ranks: Vec<u32>,
    /// Per row: start offset into `dense` for dense rows, else
    /// [`NOT_RANKED`].
    dense_rows: Vec<u32>,
    /// Concatenated dense rows, one partner-side-width slot block each,
    /// holding ranks.
    dense: Vec<u32>,
}

impl CsrRanks {
    /// A row is stored dense when its list covers at least
    /// `1/DENSE_ROW_DIVISOR` of the partner side: the dense copy then
    /// costs at most `DENSE_ROW_DIVISOR` times the sparse row while
    /// buying O(1) lookups — and a sort-free build — on exactly the rows
    /// where searching is deepest and sorting most expensive.
    const DENSE_ROW_DIVISOR: usize = 8;

    /// Sparse rows at most this long answer lookups by a counting scan
    /// instead of binary search. The scan has no data-dependent loads —
    /// every probe of a binary search must wait for the previous one,
    /// while counting `entries < key` over a contiguous slice
    /// auto-vectorizes and fetches its few cache lines in parallel — so
    /// it wins at the candidate-list lengths threshold pruning produces
    /// (a few dozen partners).
    const LINEAR_SEARCH_LEN: usize = 64;

    fn build(
        lists: &[Vec<usize>],
        other_side: usize,
        side: &'static str,
    ) -> Result<CsrRanks, PreferenceError> {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut csr = CsrRanks {
            offsets: Vec::with_capacity(lists.len() + 1),
            partners: Vec::with_capacity(total),
            ranks: Vec::with_capacity(total),
            dense_rows: Vec::with_capacity(lists.len()),
            dense: Vec::new(),
        };
        csr.offsets.push(0);
        // Duplicate detection via agent-stamps: one shared `other_side`
        // array for the whole build (never cleared — a slot is "seen"
        // only when stamped with the current agent), keeping the
        // per-entry scan order — and therefore which invalid entry an
        // error reports — identical to the reference hashmap path.
        let mut stamp = vec![u32::MAX; other_side];
        let mut row: Vec<(u32, u32)> = Vec::new();
        for (agent, list) in lists.iter().enumerate() {
            for &entry in list {
                if entry >= other_side {
                    return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
                }
                if stamp[entry] == agent as u32 {
                    return Err(PreferenceError::DuplicateEntry { side, agent, entry });
                }
                stamp[entry] = agent as u32;
            }
            let dense_row =
                other_side > 0 && list.len().saturating_mul(Self::DENSE_ROW_DIVISOR) >= other_side;
            if dense_row {
                let start = csr.dense.len();
                csr.dense_rows.push(start as u32);
                csr.dense.resize(start + other_side, NOT_RANKED);
                for (pos, &entry) in list.iter().enumerate() {
                    csr.dense[start + entry] = pos as u32;
                }
            } else {
                csr.dense_rows.push(NOT_RANKED);
                row.clear();
                row.extend(
                    list.iter()
                        .enumerate()
                        .map(|(pos, &entry)| (entry as u32, pos as u32)),
                );
                row.sort_unstable();
                for &(partner, rank) in &row {
                    csr.partners.push(partner);
                    csr.ranks.push(rank);
                }
            }
            csr.offsets.push(csr.partners.len() as u32);
        }
        Ok(csr)
    }

    /// Rank of `b` in row `a`, or [`NOT_RANKED`]. Dense rows index
    /// directly; sparse rows narrow with a branch-free binary search (the
    /// halving step is a conditional move on the probe result, not a
    /// data-dependent branch) until the window fits
    /// [`CsrRanks::LINEAR_SEARCH_LEN`], then finish with the vectorized
    /// counting scan.
    #[inline]
    fn get(&self, a: usize, b: usize) -> u32 {
        let d = self.dense_rows[a];
        if d != NOT_RANKED {
            return self.dense[d as usize + b];
        }
        let lo = self.offsets[a] as usize;
        let row = &self.partners[lo..self.offsets[a + 1] as usize];
        let key = b as u32;
        let mut base = 0usize;
        let mut len = row.len();
        while len > Self::LINEAR_SEARCH_LEN {
            let half = len / 2;
            base += usize::from(row[base + half - 1] < key) * half;
            len -= half;
        }
        // `key`'s lower bound lies within `row[base..base + len]` (binary
        // narrowing keeps that invariant; it holds trivially when the loop
        // never ran), so counting the entries below `key` lands on it.
        let pos = base
            + row[base..base + len]
                .iter()
                .map(|&v| usize::from(v < key))
                .sum::<usize>();
        if pos < row.len() && row[pos] == key {
            self.ranks[lo + pos]
        } else {
            NOT_RANKED
        }
    }
}

fn build_ranks(lists: &[Vec<usize>], other_side: usize) -> Vec<Vec<u32>> {
    lists
        .iter()
        .map(|list| {
            let mut ranks = vec![NOT_RANKED; other_side];
            for (pos, &b) in list.iter().enumerate() {
                ranks[b] = pos as u32;
            }
            ranks
        })
        .collect()
}

/// Builds the **reference** hashmap rank maps, validating as it goes.
/// Reports the same [`PreferenceError`]s, in the same scan order and
/// with the same side names, as [`CsrRanks::build`] and the dense
/// [`validate`] path — the equivalence suite pins this.
fn build_sparse_ranks(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<Vec<HashMap<usize, u32>>, PreferenceError> {
    lists
        .iter()
        .enumerate()
        .map(|(agent, list)| {
            let mut ranks = HashMap::with_capacity(list.len());
            for (pos, &entry) in list.iter().enumerate() {
                if entry >= other_side {
                    return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
                }
                if ranks.insert(entry, pos as u32).is_some() {
                    return Err(PreferenceError::DuplicateEntry { side, agent, entry });
                }
            }
            Ok(ranks)
        })
        .collect()
}

fn validate(
    lists: &[Vec<usize>],
    other_side: usize,
    side: &'static str,
) -> Result<(), PreferenceError> {
    for (agent, list) in lists.iter().enumerate() {
        let mut seen = vec![false; other_side];
        for &entry in list {
            if entry >= other_side {
                return Err(PreferenceError::IndexOutOfRange { side, agent, entry });
            }
            if seen[entry] {
                return Err(PreferenceError::DuplicateEntry { side, agent, entry });
            }
            seen[entry] = true;
        }
    }
    Ok(())
}

/// A stable-marriage instance with incomplete (dummy-truncated) lists.
///
/// Each proposer's list ranks the reviewers it would accept, most preferred
/// first; everything below the dummy is omitted. Reviewers' lists likewise.
/// A pair can match only if each appears in the other's list.
#[derive(Debug, Clone)]
pub struct StableInstance {
    proposer_lists: Vec<Vec<usize>>,
    reviewer_lists: Vec<Vec<usize>>,
    /// Rank of reviewer `r` for proposer `p` (dense or sparse layout).
    proposer_rank: Ranks,
    /// Rank of proposer `p` for reviewer `r` (dense or sparse layout).
    reviewer_rank: Ranks,
}

impl StableInstance {
    /// Builds an instance from truncated preference lists.
    ///
    /// `proposer_lists[p]` ranks reviewer indices; `reviewer_lists[r]`
    /// ranks proposer indices. The side sizes are inferred from the outer
    /// vector lengths.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        validate(&proposer_lists, n_reviewers, PROPOSER_SIDE)?;
        validate(&reviewer_lists, n_proposers, REVIEWER_SIDE)?;
        let proposer_rank = Ranks::Dense(build_ranks(&proposer_lists, n_reviewers));
        let reviewer_rank = Ranks::Dense(build_ranks(&reviewer_lists, n_proposers));
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Builds an instance with **sparse** (flat CSR) rank tables.
    ///
    /// Semantically identical to [`StableInstance::new`] — every algorithm
    /// on the instance produces the same result — but construction time and
    /// memory are `O(Σ list length)` instead of `O(|proposers|·|reviewers|)`.
    /// This is what makes threshold-pruned candidate generation pay off:
    /// with truncated lists of a few dozen entries, a 2000×2000 frame never
    /// materialises four million rank slots. Lookups binary-search a
    /// contiguous per-row slice (no hashing), and rows dense enough for
    /// searching to be pointless get a dense-row fast path — see
    /// [`CsrRanks`]'s layout notes.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new_sparse(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        let proposer_rank = Ranks::Csr(CsrRanks::build(
            &proposer_lists,
            n_reviewers,
            PROPOSER_SIDE,
        )?);
        let reviewer_rank = Ranks::Csr(CsrRanks::build(
            &reviewer_lists,
            n_proposers,
            REVIEWER_SIDE,
        )?);
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Builds an instance with the pre-CSR **reference** rank tables
    /// (per-agent hashmaps).
    ///
    /// Kept so the equivalence suite and the rank-lookup micro-benchmarks
    /// can pit the CSR layout against the layout it replaced; produces
    /// the same results as [`StableInstance::new`] and
    /// [`StableInstance::new_sparse`] on every algorithm, and the same
    /// [`PreferenceError`]s on invalid lists. Not used on any dispatch
    /// path.
    ///
    /// # Errors
    ///
    /// Returns [`PreferenceError`] when a list contains an out-of-range or
    /// duplicate index.
    pub fn new_sparse_reference(
        proposer_lists: Vec<Vec<usize>>,
        reviewer_lists: Vec<Vec<usize>>,
    ) -> Result<Self, PreferenceError> {
        let n_reviewers = reviewer_lists.len();
        let n_proposers = proposer_lists.len();
        let proposer_rank = Ranks::Hashmap(build_sparse_ranks(
            &proposer_lists,
            n_reviewers,
            PROPOSER_SIDE,
        )?);
        let reviewer_rank = Ranks::Hashmap(build_sparse_ranks(
            &reviewer_lists,
            n_proposers,
            REVIEWER_SIDE,
        )?);
        Ok(StableInstance {
            proposer_lists,
            reviewer_lists,
            proposer_rank,
            reviewer_rank,
        })
    }

    /// Rank of reviewer `r` for proposer `p`, or [`NOT_RANKED`].
    #[inline]
    fn prank(&self, p: usize, r: usize) -> u32 {
        self.proposer_rank.get(p, r)
    }

    /// Rank of proposer `p` for reviewer `r`, or [`NOT_RANKED`].
    #[inline]
    fn rrank(&self, r: usize, p: usize) -> u32 {
        self.reviewer_rank.get(r, p)
    }

    /// Number of proposers.
    #[must_use]
    pub fn proposers(&self) -> usize {
        self.proposer_lists.len()
    }

    /// Number of reviewers.
    #[must_use]
    pub fn reviewers(&self) -> usize {
        self.reviewer_lists.len()
    }

    /// Proposer `p`'s truncated preference list.
    #[must_use]
    pub fn proposer_list(&self, p: usize) -> &[usize] {
        &self.proposer_lists[p]
    }

    /// Reviewer `r`'s truncated preference list.
    #[must_use]
    pub fn reviewer_list(&self, r: usize) -> &[usize] {
        &self.reviewer_lists[r]
    }

    /// The role-swapped instance (reviewers become proposers).
    ///
    /// Running [`StableInstance::propose`] on the swap yields the
    /// *reviewer-optimal* stable matching of `self` — the engine behind the
    /// taxi-optimal schedule NSTD-T.
    #[must_use]
    pub fn swapped(&self) -> StableInstance {
        StableInstance {
            proposer_lists: self.reviewer_lists.clone(),
            reviewer_lists: self.proposer_lists.clone(),
            proposer_rank: self.reviewer_rank.clone(),
            reviewer_rank: self.proposer_rank.clone(),
        }
    }

    /// Whether proposer `p` finds reviewer `r` acceptable (above dummy).
    #[must_use]
    pub fn proposer_accepts(&self, p: usize, r: usize) -> bool {
        self.prank(p, r) != NOT_RANKED
    }

    /// Whether reviewer `r` finds proposer `p` acceptable (above dummy).
    #[must_use]
    pub fn reviewer_accepts(&self, r: usize, p: usize) -> bool {
        self.rrank(r, p) != NOT_RANKED
    }

    /// The proposer-optimal stable matching — the paper's **Algorithm 1**.
    ///
    /// Deferred acceptance: each proposer proposes down its list; a
    /// reviewer holds its best acceptable proposal so far. Handles unequal
    /// side sizes and truncated lists; unmatched agents correspond to dummy
    /// partners (Theorem 1). Runs in `O(|R|·|T|)`.
    #[must_use]
    pub fn propose(&self) -> Matching {
        self.propose_with(&mut MatchScratch::new())
    }

    /// [`StableInstance::propose`] with caller-owned working memory.
    ///
    /// Bit-identical to `propose`; the scratch only supplies the cursor,
    /// free-stack and matching buffers so a rolling caller avoids
    /// re-allocating them every frame. Hand the result back through
    /// [`MatchScratch::recycle`] once it is consumed to close the loop.
    #[must_use]
    pub fn propose_with(&self, scratch: &mut MatchScratch) -> Matching {
        let _span = obs::span("deferred_acceptance");
        let mut m = scratch.take_matching(self.proposers(), self.reviewers());
        scratch.next.clear();
        scratch.next.resize(self.proposers(), 0);
        // Stack of proposers that still need to propose.
        scratch.free.clear();
        scratch.free.extend((0..self.proposers()).rev());
        let MatchScratch { next, free, .. } = scratch;
        self.run_proposals(&mut m, next, free);
        m
    }

    /// The deferred-acceptance proposal loop, resumable from any reachable
    /// intermediate state (`m` + per-proposer cursors + free stack). Both
    /// [`StableInstance::propose`] (cold, everything empty) and
    /// [`StableInstance::propose_seeded`] (warm, seeded pairs linked and
    /// cursors advanced) drive this same loop, so the two paths cannot
    /// diverge in proposal semantics.
    fn run_proposals(&self, m: &mut Matching, next: &mut [usize], free: &mut Vec<usize>) {
        // Proposal/rejection dynamics are batched in locals and flushed
        // once: the loop body stays counter-free for the disabled case.
        let mut proposals = 0u64;
        let mut rejections = 0u64;
        while let Some(p) = free.pop() {
            // Propose down p's list from its cursor.
            // Runs down p's list from its cursor; falling off the end
            // means p matches its dummy (unserved).
            while let Some(&r) = self.proposer_lists[p].get(next[p]) {
                next[p] += 1;
                proposals += 1;
                let my_rank = self.rrank(r, p);
                if my_rank == NOT_RANKED {
                    rejections += 1;
                    continue; // r would rather stay undispatched
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        m.link(p, r);
                        break;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            m.link(p, r); // unlinks `held`
                            free.push(held);
                            rejections += 1; // `held` is bumped back out
                            break;
                        }
                        rejections += 1;
                    }
                }
            }
        }
        if proposals > 0 {
            obs::add_many(&[
                ("match.proposals", proposals),
                ("match.rejections", rejections),
            ]);
        }
    }

    /// Prunes `seed` down to a subset that is a *reachable* deferred-
    /// acceptance state of **this** instance, so that
    /// [`StableInstance::propose_seeded`] started from it provably returns
    /// the same matching as a cold [`StableInstance::propose`].
    ///
    /// A surviving pair `(p, r)` means "proposer `p` currently holds
    /// reviewer `r`, having already proposed to everything `p` ranks above
    /// `r`". Three conditions make the combined state reachable by some
    /// valid proposal order:
    ///
    /// 1. **Well-formed**: pairs are mutually acceptable, in range, and no
    ///    proposer or reviewer appears twice (first occurrence wins).
    /// 2. **Prefix-justified**: every reviewer `r'` that `p` skipped (ranked
    ///    above `r` in `p`'s list) must reject `p` in the seeded state —
    ///    either `r'` does not rank `p`, or `r'` is seeded to a proposer it
    ///    strictly prefers over `p`.
    /// 3. **Acyclic**: justification by a seeded holder `q` means `q`'s
    ///    proposals must happen before `p`'s skips, an ordering constraint.
    ///    If those constraints form a cycle (each pair justifying the next
    ///    around a loop) no serial proposal order realises the state, and
    ///    seeding it could freeze a matching deferred acceptance would never
    ///    reach. Cyclic pairs are dropped (Kahn-style settling).
    ///
    /// Dropping a pair can invalidate the justification of another, so 2–3
    /// iterate to a fixpoint. Validity depends only on the current
    /// instance, never on where the seed came from: carrying pairs over
    /// from a previous frame's matching is purely a warm-start heuristic,
    /// and any stale or garbage pair is simply pruned here.
    #[must_use]
    pub fn valid_warm_seed(&self, seed: &[(usize, usize)]) -> Vec<(usize, usize)> {
        let mut prune = PruneScratch::default();
        let mut out = Vec::new();
        self.valid_warm_seed_into(seed, &mut prune, &mut out);
        out
    }

    /// Buffer-reusing core of [`StableInstance::valid_warm_seed`]: writes
    /// the pruned seed into `out` using `prune` as working state, both
    /// resized as needed so any capacity (including empty) works.
    fn valid_warm_seed_into(
        &self,
        seed: &[(usize, usize)],
        prune: &mut PruneScratch,
        out: &mut Vec<(usize, usize)>,
    ) {
        let _span = obs::span("seed_prune");
        let np = self.proposers();
        let nr = self.reviewers();
        prune.p2r.clear();
        prune.p2r.resize(np, None);
        prune.r2p.clear();
        prune.r2p.resize(nr, None);
        for &(p, r) in seed {
            if p >= np || r >= nr || prune.p2r[p].is_some() || prune.r2p[r].is_some() {
                continue;
            }
            if !self.proposer_accepts(p, r) || !self.reviewer_accepts(r, p) {
                continue;
            }
            prune.p2r[p] = Some(r);
            prune.r2p[r] = Some(p);
        }
        loop {
            let removed =
                self.prune_unjustified(&mut prune.p2r, &mut prune.r2p) | self.prune_cycles(prune);
            if !removed {
                break;
            }
        }
        out.clear();
        out.extend((0..np).filter_map(|p| prune.p2r[p].map(|r| (p, r))));
    }

    /// Drops seeded pairs whose skipped prefix is not justified by the
    /// current seed state (condition 2 of [`StableInstance::valid_warm_seed`]),
    /// repeating until a full pass removes nothing. Returns whether any
    /// pair was dropped.
    fn prune_unjustified(&self, p2r: &mut [Option<usize>], r2p: &mut [Option<usize>]) -> bool {
        let mut any = false;
        loop {
            let mut changed = false;
            for (p, slot) in p2r.iter_mut().enumerate() {
                let Some(r) = *slot else { continue };
                let rank = self.prank(p, r) as usize;
                let justified = self.proposer_lists[p][..rank].iter().all(|&skipped| {
                    let my_rank = self.rrank(skipped, p);
                    my_rank == NOT_RANKED
                        || r2p[skipped].is_some_and(|q| self.rrank(skipped, q) < my_rank)
                });
                if !justified {
                    *slot = None;
                    r2p[r] = None;
                    changed = true;
                    any = true;
                }
            }
            if !changed {
                return any;
            }
        }
    }

    /// Drops seeded pairs caught in a justification cycle (condition 3 of
    /// [`StableInstance::valid_warm_seed`]). An edge `p → q` means `p`'s
    /// skip of some reviewer is justified by seeded holder `q`, i.e. `q`
    /// must propose before `p`; pairs that cannot be topologically settled
    /// have no valid serial proposal order and are removed. Assumes every
    /// remaining pair is prefix-justified. Returns whether any pair was
    /// dropped.
    fn prune_cycles(&self, s: &mut PruneScratch) -> bool {
        let PruneScratch {
            p2r,
            r2p,
            justifiers,
            dependents,
            pending,
            settle,
            settled,
        } = s;
        let np = p2r.len();
        for v in justifiers.iter_mut() {
            v.clear();
        }
        justifiers.resize_with(np, Vec::new);
        for v in dependents.iter_mut() {
            v.clear();
        }
        dependents.resize_with(np, Vec::new);
        for p in 0..np {
            let Some(r) = p2r[p] else { continue };
            let rank = self.prank(p, r) as usize;
            for &skipped in &self.proposer_lists[p][..rank] {
                if self.rrank(skipped, p) == NOT_RANKED {
                    continue;
                }
                let q = r2p[skipped].expect("prefix is justified, so the skip has a holder");
                if !justifiers[p].contains(&q) {
                    justifiers[p].push(q);
                    dependents[q].push(p);
                }
            }
        }
        pending.clear();
        pending.extend(justifiers.iter().map(Vec::len));
        settle.clear();
        settle.extend((0..np).filter(|&p| p2r[p].is_some() && pending[p] == 0));
        settled.clear();
        settled.resize(np, false);
        while let Some(q) = settle.pop() {
            settled[q] = true;
            for &p in &dependents[q] {
                pending[p] -= 1;
                if pending[p] == 0 {
                    settle.push(p);
                }
            }
        }
        let mut any = false;
        for p in 0..np {
            if let Some(r) = p2r[p] {
                if !settled[p] {
                    p2r[p] = None;
                    r2p[r] = None;
                    any = true;
                }
            }
        }
        any
    }

    /// The proposer-optimal stable matching, warm-started from `seed` —
    /// typically the previous frame's matching in a rolling dispatch loop.
    ///
    /// The seed is first pruned by [`StableInstance::valid_warm_seed`];
    /// surviving pairs are linked with each proposer's cursor advanced just
    /// past its seeded reviewer, and the ordinary proposal loop then runs
    /// for the remaining free proposers. Because the pruned seed state is
    /// reachable by a valid proposal sequence and deferred acceptance is
    /// proposal-order independent (McVitie–Wilson), the result is **always
    /// exactly** [`StableInstance::propose`] — for any `seed` whatsoever.
    /// The seed only controls how much proposal work is skipped.
    #[must_use]
    pub fn propose_seeded(&self, seed: &[(usize, usize)]) -> Matching {
        self.propose_seeded_with(seed, &mut MatchScratch::new())
    }

    /// [`StableInstance::propose_seeded`] with caller-owned working
    /// memory. Bit-identical to `propose_seeded` for any scratch state;
    /// reusing one scratch across frames makes the warm path
    /// allocation-free once its buffers reach the steady-state shape.
    #[must_use]
    pub fn propose_seeded_with(
        &self,
        seed: &[(usize, usize)],
        scratch: &mut MatchScratch,
    ) -> Matching {
        let _span = obs::span("deferred_acceptance");
        let seed_pairs_in = seed.len() as u64;
        {
            let MatchScratch {
                seed: pruned,
                prune,
                ..
            } = scratch;
            self.valid_warm_seed_into(seed, prune, pruned);
        }
        obs::add_many(&[
            ("match.seed_pairs_in", seed_pairs_in),
            ("match.seed_pairs_kept", scratch.seed.len() as u64),
        ]);
        let mut m = scratch.take_matching(self.proposers(), self.reviewers());
        scratch.next.clear();
        scratch.next.resize(self.proposers(), 0);
        for i in 0..scratch.seed.len() {
            let (p, r) = scratch.seed[i];
            m.link(p, r);
            scratch.next[p] = self.prank(p, r) as usize + 1;
        }
        scratch.free.clear();
        scratch.free.extend(
            (0..self.proposers())
                .rev()
                .filter(|&p| m.proposer_to_reviewer[p].is_none()),
        );
        let MatchScratch { next, free, .. } = scratch;
        self.run_proposals(&mut m, next, free);
        // A pruned seed is provably exact (see valid_warm_seed). Debug
        // builds distrust the proof anyway, but a divergence degrades to
        // the cold result instead of asserting: a warm-state bug costs
        // one slow frame, not the whole run. The counter makes the silent
        // degrade observable — equivalence suites that run in debug builds
        // install a recorder and assert it stays zero, otherwise the
        // fallback would make `seeded == cold` vacuously true.
        if cfg!(debug_assertions) {
            let cold = self.propose();
            if m != cold {
                obs::add("match.seed_divergence", 1);
                scratch.recycle(m);
                return cold;
            }
        }
        m
    }

    /// The reviewer-optimal stable matching, warm-started from `seed`
    /// (given as `(proposer, reviewer)` pairs, like
    /// [`StableInstance::propose_seeded`]). Exactly
    /// [`StableInstance::reviewer_optimal`] for any seed; the swap-side
    /// pruning happens on the swapped instance.
    #[must_use]
    pub fn reviewer_optimal_seeded(&self, seed: &[(usize, usize)]) -> Matching {
        self.reviewer_optimal_seeded_with(seed, &mut MatchScratch::new())
    }

    /// [`StableInstance::reviewer_optimal_seeded`] with caller-owned
    /// working memory (see [`StableInstance::propose_seeded_with`]). The
    /// role swap itself still clones the preference tables — that cost is
    /// hoisted by callers that cache the swapped instance, not here.
    #[must_use]
    pub fn reviewer_optimal_seeded_with(
        &self,
        seed: &[(usize, usize)],
        scratch: &mut MatchScratch,
    ) -> Matching {
        let mut swapped_seed = std::mem::take(&mut scratch.swap_seed);
        swapped_seed.clear();
        swapped_seed.extend(seed.iter().map(|&(p, r)| (r, p)));
        let m = self.swapped().propose_seeded_with(&swapped_seed, scratch);
        scratch.swap_seed = swapped_seed;
        Matching {
            proposer_to_reviewer: m.reviewer_to_proposer,
            reviewer_to_proposer: m.proposer_to_reviewer,
        }
    }

    /// The reviewer-optimal stable matching (role-swapped proposals).
    #[must_use]
    pub fn reviewer_optimal(&self) -> Matching {
        let m = self.swapped().propose();
        Matching {
            proposer_to_reviewer: m.reviewer_to_proposer,
            reviewer_to_proposer: m.proposer_to_reviewer,
        }
    }

    /// All blocking pairs of `m` under the paper's Definition 1.
    ///
    /// `(p, r)` blocks when each finds the other acceptable and each
    /// prefers the other over its current partner (an unmatched agent —
    /// one holding its dummy — prefers every acceptable partner, since
    /// "dummies always prefer non-dummies").
    #[must_use]
    pub fn blocking_pairs(&self, m: &Matching) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for p in 0..self.proposers() {
            let p_current_rank = m.proposer_to_reviewer[p].map(|r| self.prank(p, r));
            for &r in &self.proposer_lists[p] {
                let pr = self.prank(p, r);
                let p_prefers = p_current_rank.is_none_or(|cur| pr < cur);
                if !p_prefers {
                    continue;
                }
                let rp = self.rrank(r, p);
                if rp == NOT_RANKED {
                    continue;
                }
                let r_prefers = match m.reviewer_to_proposer[r] {
                    None => true,
                    Some(held) => rp < self.rrank(r, held),
                };
                if r_prefers {
                    out.push((p, r));
                }
            }
        }
        out
    }

    /// Whether `m` is stable (no blocking pair) and consistent with the
    /// acceptability constraints (no one matched below their dummy).
    #[must_use]
    pub fn is_stable(&self, m: &Matching) -> bool {
        for (p, r) in m.pairs() {
            if !self.proposer_accepts(p, r) || !self.reviewer_accepts(r, p) {
                return false;
            }
        }
        self.blocking_pairs(m).is_empty()
    }

    /// The paper's **BreakDispatch** (Algorithm 2, Rules 1–3): break
    /// proposer `j`'s current match in `s` and chase the proposal chain to
    /// the *next* stable matching below `s` in the lattice.
    ///
    /// Returns `None` when BreakDispatch is unsuccessful:
    ///
    /// * Rule 3 — `j` is unserved in `s` (then it is unserved everywhere,
    ///   Theorem 2),
    /// * Rule 2 — the chain would involve a proposer with index `< j`,
    /// * Rule 1 fails — the chain ends without `j`'s old reviewer getting
    ///   a proposer it prefers over `j` (including any proposer falling to
    ///   its dummy).
    ///
    /// `s` must be a stable matching of this instance.
    #[must_use]
    pub fn break_dispatch(&self, s: &Matching, j: usize) -> Option<Matching> {
        let t = s.proposer_to_reviewer[j]?; // Rule 3
        let ghost_rank = self.rrank(t, j);
        let mut m = s.clone();
        m.unlink_proposer(j);
        let mut cur = j;
        // Resume proposing just below the broken partner.
        let mut pos = self.prank(j, t) as usize + 1;
        loop {
            let mut displaced: Option<usize> = None;
            while pos < self.proposer_lists[cur].len() {
                let r = self.proposer_lists[cur][pos];
                pos += 1;
                let my_rank = self.rrank(r, cur);
                if my_rank == NOT_RANKED {
                    continue;
                }
                if r == t && m.reviewer_to_proposer[t].is_none() {
                    // The broken reviewer holds j's ghost: it only accepts
                    // a strictly better proposer (Rule 1); on acceptance
                    // the chain terminates successfully.
                    if my_rank < ghost_rank {
                        m.link(cur, r);
                        debug_assert!(self.is_stable(&m));
                        return Some(m);
                    }
                    continue;
                }
                match m.reviewer_to_proposer[r] {
                    None => {
                        // An ordinarily-unmatched reviewer accepted: the
                        // chain ends but Rule 1 is unsatisfied (the broken
                        // reviewer t is left blocking with j).
                        return None;
                    }
                    Some(held) => {
                        if my_rank < self.rrank(r, held) {
                            if held < j {
                                return None; // Rule 2
                            }
                            m.link(cur, r);
                            displaced = Some(held);
                            break;
                        }
                    }
                }
            }
            match displaced {
                Some(k) => {
                    // The displaced proposer resumes below its lost partner.
                    let lost = m.proposer_to_reviewer[cur].expect("just linked");
                    pos = self.prank(k, lost) as usize + 1;
                    cur = k;
                }
                // `cur` exhausted its list: it fell to its dummy, so the
                // chain cannot yield a stable matching (Theorem 3, case i).
                None => return None,
            }
        }
    }

    /// Enumerates **all** stable matchings — the paper's **Algorithm 2**.
    ///
    /// Starts from the proposer-optimal matching and recursively applies
    /// [`StableInstance::break_dispatch`] with non-decreasing proposer
    /// indices; by the paper's Theorem 4 every stable matching is produced
    /// exactly once. The first element is always the proposer-optimal
    /// matching.
    ///
    /// The number of stable matchings can be exponential in adversarial
    /// instances; `limit` caps how many are collected (`None` = no cap).
    #[must_use]
    pub fn enumerate_all(&self, limit: Option<usize>) -> Vec<Matching> {
        let _span = obs::span("enumeration");
        let cap = limit.unwrap_or(usize::MAX).max(1);
        let s0 = self.propose();
        let mut out = Vec::new();
        out.push(s0.clone());
        let mut nodes = 0u64;
        self.enumerate_rec(&s0, 0, cap, &mut nodes, &mut out);
        obs::add("match.break_dispatch_nodes", nodes);
        out
    }

    fn enumerate_rec(
        &self,
        s: &Matching,
        j_min: usize,
        cap: usize,
        nodes: &mut u64,
        out: &mut Vec<Matching>,
    ) {
        for j in j_min..self.proposers() {
            if out.len() >= cap {
                return;
            }
            *nodes += 1;
            if let Some(next) = self.break_dispatch(s, j) {
                out.push(next.clone());
                self.enumerate_rec(&next, j, cap, nodes, out);
            }
        }
    }

    /// Budget-bounded stable-matching enumeration.
    ///
    /// Identical to [`StableInstance::enumerate_all`] — same matchings in
    /// the same order, same `limit` semantics — except that the
    /// BreakDispatch recursion is metered: each
    /// [`StableInstance::break_dispatch`] attempt counts as one *node*,
    /// the walk stops once `budget`'s node cap is reached, and the
    /// wall-clock deadline is polled every 32 nodes. With an unlimited
    /// budget the result equals `enumerate_all(limit)` exactly.
    ///
    /// When the budget stops the walk, [`Enumeration::truncated`] is set
    /// and the collected prefix is still well-formed: the first matching
    /// is always the proposer-optimal one, and every collected matching
    /// is stable — the budget only costs *completeness* of the
    /// enumeration, never correctness of its elements.
    #[must_use]
    pub fn enumerate_budgeted(&self, limit: Option<usize>, budget: &TimeBudget) -> Enumeration {
        let _span = obs::span("enumeration");
        let cap = limit.unwrap_or(usize::MAX).max(1);
        let s0 = self.propose();
        let mut out = Vec::new();
        out.push(s0.clone());
        let mut nodes = 0u64;
        let truncated = self.enumerate_budgeted_rec(&s0, 0, cap, budget, &mut nodes, &mut out);
        obs::add("match.break_dispatch_nodes", nodes);
        Enumeration {
            matchings: out,
            nodes,
            truncated,
        }
    }

    /// Metered twin of [`StableInstance::enumerate_rec`]. Returns whether
    /// the walk was stopped by the budget (reaching the `cap` is not
    /// truncation — `enumerate_all` stops there too).
    fn enumerate_budgeted_rec(
        &self,
        s: &Matching,
        j_min: usize,
        cap: usize,
        budget: &TimeBudget,
        nodes: &mut u64,
        out: &mut Vec<Matching>,
    ) -> bool {
        for j in j_min..self.proposers() {
            if out.len() >= cap {
                return false;
            }
            if budget.node_cap().is_some_and(|c| *nodes >= c) {
                return true;
            }
            if (*nodes).is_multiple_of(32) && budget.exhausted() {
                return true;
            }
            *nodes += 1;
            if let Some(next) = self.break_dispatch(s, j) {
                out.push(next.clone());
                if self.enumerate_budgeted_rec(&next, j, cap, budget, nodes, out) {
                    return true;
                }
            }
        }
        false
    }

    /// Sum over matched pairs of the reviewer's rank for its partner
    /// (0 = favourite). This is the objective the reviewer-optimal
    /// matching minimises over all stable matchings: by the lattice
    /// order, moving toward the reviewer-optimal end weakly improves
    /// *every* reviewer's rank at once, and the rural-hospitals theorem
    /// fixes the matched set, so the rank-sum orders stable matchings
    /// consistently with the lattice.
    #[must_use]
    pub fn reviewer_cost(&self, m: &Matching) -> u64 {
        m.pairs().map(|(p, r)| u64::from(self.rrank(r, p))).sum()
    }

    /// A lower bound on [`StableInstance::reviewer_cost`] over all stable
    /// matchings: every reviewer matched in one stable matching is
    /// matched in all of them (rural hospitals), and no reviewer can do
    /// better than its favourite *mutually acceptable* proposer — so the
    /// sum of those per-reviewer minima bounds the reviewer-optimal cost
    /// from below. The bound is not always attained (reviewers' favourite
    /// choices may conflict), but when the search meets it, optimality is
    /// proven and the walk stops early.
    fn reviewer_cost_lower_bound(&self, matched: &Matching) -> u64 {
        (0..self.reviewers())
            .filter(|&r| matched.reviewer_partner(r).is_some())
            .map(|r| {
                self.reviewer_lists[r]
                    .iter()
                    .position(|&p| self.proposer_accepts(p, r))
                    .map_or(0, |rank| rank as u64)
            })
            .sum()
    }

    /// The anytime reviewer-optimal (NSTD-T) search — **Algorithm 2**
    /// driven as a best-so-far branch-and-bound instead of a full
    /// enumeration.
    ///
    /// Walks the BreakDispatch tree from the proposer-optimal matching
    /// exactly like [`StableInstance::enumerate_budgeted`], but instead
    /// of collecting every stable matching it keeps only the best seen
    /// so far under [`StableInstance::reviewer_cost`], together with the
    /// instance's reviewer-cost lower bound. Each step down the lattice
    /// weakly improves every reviewer, so the deepest matching is the
    /// reviewer-optimal one; the only sound *prune* is therefore the
    /// global one — when the best cost meets the lower bound the result
    /// is provably optimal and the walk stops. Otherwise the budget
    /// (node cap + deadline, polled every 32 nodes) decides when to stop,
    /// and [`AnytimeSearch::gap`] reports how far from proven-optimal
    /// the answer may still be.
    ///
    /// With an unlimited budget the walk visits every stable matching,
    /// so the result **equals [`StableInstance::reviewer_optimal`]
    /// bit-for-bit** (the reviewer-optimal matching is the unique
    /// cost-minimiser: equal cost implies every reviewer holds its
    /// optimal partner, which pins the matching). Under any budget the
    /// result is always a *stable* matching at least as good (for every
    /// reviewer) as the proposer-optimal start — the budget only costs
    /// proximity to optimal, never stability.
    ///
    /// Emits the `match.anytime_nodes` counter and the
    /// `match.anytime_gap` gauge.
    #[must_use]
    pub fn reviewer_optimal_anytime(&self, budget: &TimeBudget) -> AnytimeSearch {
        let _span = obs::span("anytime_enumeration");
        let s0 = self.propose();
        let lower_bound = self.reviewer_cost_lower_bound(&s0);
        let mut best_cost = self.reviewer_cost(&s0);
        let mut best = s0.clone();
        let mut nodes = 0u64;
        let mut truncated = false;
        if best_cost > lower_bound {
            truncated = self.anytime_rec(
                &s0,
                0,
                budget,
                &mut nodes,
                &mut best,
                &mut best_cost,
                lower_bound,
            );
        }
        // An un-truncated walk visited every stable matching, which is a
        // proof of optimality even when the instance-level bound is loose
        // (geometric instances often leave it at 0) — tighten the
        // certificate so `gap()` reports 0.
        let lower_bound = if truncated { lower_bound } else { best_cost };
        obs::add("match.anytime_nodes", nodes);
        obs::gauge("match.anytime_gap", (best_cost - lower_bound) as f64);
        AnytimeSearch {
            best,
            reviewer_cost: best_cost,
            lower_bound,
            nodes,
            truncated,
        }
    }

    /// Best-so-far twin of [`StableInstance::enumerate_budgeted_rec`].
    /// Returns whether the walk was stopped by the budget (meeting the
    /// lower bound is a proof of optimality, not truncation).
    #[allow(clippy::too_many_arguments)]
    fn anytime_rec(
        &self,
        s: &Matching,
        j_min: usize,
        budget: &TimeBudget,
        nodes: &mut u64,
        best: &mut Matching,
        best_cost: &mut u64,
        lower_bound: u64,
    ) -> bool {
        for j in j_min..self.proposers() {
            if *best_cost == lower_bound {
                return false; // proven optimal — nothing left to find
            }
            if budget.node_cap().is_some_and(|c| *nodes >= c) {
                return true;
            }
            if (*nodes).is_multiple_of(32) && budget.exhausted() {
                return true;
            }
            *nodes += 1;
            if let Some(next) = self.break_dispatch(s, j) {
                let cost = self.reviewer_cost(&next);
                if cost < *best_cost {
                    *best_cost = cost;
                    best.clone_from(&next);
                }
                if self.anytime_rec(&next, j, budget, nodes, best, best_cost, lower_bound) {
                    return true;
                }
            }
        }
        false
    }

    /// Rank (0 = favourite) of reviewer `r` in proposer `p`'s list, or
    /// `None` when `r` is below `p`'s dummy.
    #[must_use]
    pub fn proposer_rank_of(&self, p: usize, r: usize) -> Option<u32> {
        let rank = self.prank(p, r);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Rank (0 = favourite) of proposer `p` in reviewer `r`'s list, or
    /// `None` when `p` is below `r`'s dummy.
    #[must_use]
    pub fn reviewer_rank_of(&self, r: usize, p: usize) -> Option<u32> {
        let rank = self.rrank(r, p);
        (rank != NOT_RANKED).then_some(rank)
    }

    /// Egalitarian cost of a matching: the sum over matched pairs of both
    /// sides' ranks (0 = everyone got their favourite).
    ///
    /// # Panics
    ///
    /// Panics if `m` matches a pair outside the acceptability lists.
    #[must_use]
    pub fn egalitarian_cost(&self, m: &Matching) -> u64 {
        m.pairs()
            .map(|(p, r)| {
                let pr = self.proposer_rank_of(p, r).expect("acceptable pair") as u64;
                let rr = self.reviewer_rank_of(r, p).expect("acceptable pair") as u64;
                pr + rr
            })
            .sum()
    }

    /// The egalitarian stable matching: among `all` (e.g. from
    /// [`StableInstance::enumerate_all`]), the one minimising
    /// [`StableInstance::egalitarian_cost`] — the fairest compromise
    /// between the passenger-optimal and taxi-optimal extremes.
    ///
    /// Returns `None` when `all` is empty.
    #[must_use]
    pub fn egalitarian<'a>(&self, all: &'a [Matching]) -> Option<&'a Matching> {
        all.iter().min_by_key(|m| self.egalitarian_cost(m))
    }

    /// The (lower) median stable matching assembled from `all` stable
    /// matchings: every proposer is assigned the median of its partners
    /// across the set (Teo–Sethuraman: this selection is itself a stable
    /// matching). With dummy entries the matched set is constant across
    /// `all` (rural hospitals), so the median is well defined per agent.
    ///
    /// Returns `None` when `all` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the matchings in `all` are not all stable matchings of
    /// this instance (their matched sets must agree).
    #[must_use]
    pub fn median_stable_matching(&self, all: &[Matching]) -> Option<Matching> {
        let first = all.first()?;
        let mut out = Matching::empty(self.proposers(), self.reviewers());
        for p in 0..self.proposers() {
            if first.proposer_partner(p).is_none() {
                continue;
            }
            let mut partners: Vec<usize> = all
                .iter()
                .map(|m| {
                    m.proposer_partner(p)
                        .expect("matched set is invariant across stable matchings")
                })
                .collect();
            partners.sort_by_key(|&r| self.prank(p, r));
            let median = partners[(partners.len() - 1) / 2];
            out.link(p, median);
        }
        debug_assert!(self.is_stable(&out));
        Some(out)
    }

    /// Exhaustive stable-matching enumeration by brute force.
    ///
    /// Exponential — intended for validating [`StableInstance::enumerate_all`]
    /// on small instances (tests, ablations). Results are in an unspecified
    /// order.
    #[must_use]
    pub fn enumerate_brute_force(&self) -> Vec<Matching> {
        let mut out = Vec::new();
        let mut m = Matching::empty(self.proposers(), self.reviewers());
        self.brute_rec(0, &mut m, &mut out);
        out
    }

    fn brute_rec(&self, p: usize, m: &mut Matching, out: &mut Vec<Matching>) {
        if p == self.proposers() {
            if self.is_stable(m) {
                out.push(m.clone());
            }
            return;
        }
        // p stays unmatched…
        self.brute_rec(p + 1, m, out);
        // …or takes any mutually-acceptable free reviewer.
        for &r in &self.proposer_lists[p] {
            if m.reviewer_to_proposer[r].is_none() && self.reviewer_accepts(r, p) {
                m.link(p, r);
                self.brute_rec(p + 1, m, out);
                m.unlink_proposer(p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;

    fn classic_3x3() -> StableInstance {
        // A classic instance with multiple stable matchings.
        StableInstance::new(
            vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]],
            vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]],
        )
        .unwrap()
    }

    #[test]
    fn proposal_dynamics_are_recorded_on_the_scoped_recorder() {
        let inst = classic_3x3();
        let rec = obs::Recorder::new();
        let baseline = {
            let _scope = obs::scope(&rec);
            let m = inst.propose();
            let all = inst.enumerate_all(None);
            assert_eq!(all[0], m);
            m
        };
        // Cold 3x3 deferred acceptance proposes at least once per proposer;
        // the enumeration walks at least one BreakDispatch node per column.
        assert!(rec.counter("match.proposals") >= 3);
        assert!(rec.counter("match.break_dispatch_nodes") >= 3);

        // Warm-start records seed-prune sizes, and the result (hence the
        // recorded dynamics) is independent of the recorder being enabled.
        let rec2 = obs::Recorder::new();
        {
            let _scope = obs::scope(&rec2);
            let seeded = inst.propose_seeded(&baseline.pairs().collect::<Vec<_>>());
            assert_eq!(seeded, baseline);
        }
        assert_eq!(rec2.counter("match.seed_pairs_in"), 3);
        assert_eq!(rec2.counter("match.seed_pairs_kept"), 3);
        // Outside any scope nothing is recorded and results are identical.
        assert_eq!(inst.propose(), baseline);
    }

    #[test]
    fn propose_is_stable_on_classic() {
        let inst = classic_3x3();
        let m = inst.propose();
        assert!(inst.is_stable(&m));
        // Everyone gets their first choice (proposer-optimal).
        assert_eq!(m.proposer_partner(0), Some(0));
        assert_eq!(m.proposer_partner(1), Some(1));
        assert_eq!(m.proposer_partner(2), Some(2));
    }

    #[test]
    fn reviewer_optimal_differs_on_classic() {
        let inst = classic_3x3();
        let m = inst.reviewer_optimal();
        assert!(inst.is_stable(&m));
        // Each reviewer gets its first choice.
        assert_eq!(m.reviewer_partner(0), Some(1));
        assert_eq!(m.reviewer_partner(1), Some(2));
        assert_eq!(m.reviewer_partner(2), Some(0));
    }

    #[test]
    fn classic_has_three_stable_matchings() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        let brute = inst.enumerate_brute_force();
        assert_eq!(brute.len(), 3);
        let set_a: HashSet<_> = all.into_iter().collect();
        let set_b: HashSet<_> = brute.into_iter().collect();
        assert_eq!(set_a, set_b);
    }

    #[test]
    fn unequal_sides_leave_someone_unmatched() {
        // 3 proposers, 1 reviewer.
        let inst =
            StableInstance::new(vec![vec![0], vec![0], vec![0]], vec![vec![2, 0, 1]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 1);
        assert_eq!(m.reviewer_partner(0), Some(2));
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn truncated_lists_respect_dummies() {
        // Proposer 0 would rather stay alone than take reviewer 1.
        // Reviewer 0 would rather stay alone than take proposer 0.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = StableInstance::new(vec![], vec![]).unwrap();
        let m = inst.propose();
        assert_eq!(m.matched_pairs(), 0);
        assert!(inst.is_stable(&m));
        assert_eq!(inst.enumerate_all(None).len(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = StableInstance::new(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
    }

    #[test]
    fn rejects_duplicates() {
        let err = StableInstance::new(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn blocking_pairs_detects_instability() {
        let inst = classic_3x3();
        let mut m = Matching::empty(3, 3);
        // (0, 1) blocks: proposer 0 prefers reviewer 1 over 2, and
        // reviewer 1 prefers proposer 0 over its partner 1.
        m.link(0, 2);
        m.link(1, 1);
        m.link(2, 0);
        assert!(!inst.is_stable(&m));
        assert!(inst.blocking_pairs(&m).contains(&(0, 1)));
    }

    #[test]
    fn one_sided_acceptance_cannot_match() {
        // Proposer 0 accepts reviewer 0, but reviewer 0 accepts nobody.
        let inst = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        let m = inst.propose();
        assert_eq!(m.proposer_partner(0), None);
        // And a forced link is flagged as not stable.
        let mut bad = Matching::empty(1, 1);
        bad.link(0, 0);
        assert!(!inst.is_stable(&bad));
    }

    #[test]
    fn break_dispatch_on_unserved_is_rule3_none() {
        let inst = StableInstance::new(vec![vec![0], vec![0]], vec![vec![0, 1]]).unwrap();
        let s = inst.propose();
        assert_eq!(s.proposer_partner(1), None);
        assert!(inst.break_dispatch(&s, 1).is_none());
    }

    #[test]
    fn matching_link_unlinks_previous() {
        let mut m = Matching::empty(2, 2);
        m.link(0, 0);
        m.link(1, 0); // steals reviewer 0
        assert_eq!(m.proposer_partner(0), None);
        assert_eq!(m.reviewer_partner(0), Some(1));
        m.link(1, 1); // moves proposer 1
        assert_eq!(m.reviewer_partner(0), None);
        assert_eq!(m.matched_pairs(), 1);
    }

    #[test]
    fn egalitarian_cost_and_selection() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        assert_eq!(all.len(), 3);
        // Proposer-optimal: everyone rank 0 for proposers, rank 2 for
        // reviewers → cost 6. Reviewer-optimal symmetric. The middle
        // (cyclic) matching has rank 1 everywhere → cost 6 as well.
        let costs: Vec<u64> = all.iter().map(|m| inst.egalitarian_cost(m)).collect();
        assert!(costs.iter().all(|&c| c == 6));
        assert!(inst.egalitarian(&all).is_some());
        assert!(inst.egalitarian(&[]).is_none());
    }

    #[test]
    fn median_of_classic_is_the_middle_matching() {
        let inst = classic_3x3();
        let all = inst.enumerate_all(None);
        let median = inst.median_stable_matching(&all).unwrap();
        assert!(inst.is_stable(&median));
        // Each proposer's median partner is its 2nd choice.
        for p in 0..3 {
            let r = median.proposer_partner(p).unwrap();
            assert_eq!(inst.proposer_rank_of(p, r), Some(1));
        }
    }

    #[test]
    fn median_is_stable_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0x5E7A);
        for _ in 0..200 {
            let np = rng.gen_range(1..=6);
            let nr = rng.gen_range(1..=6);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_all(None);
            let median = inst.median_stable_matching(&all).unwrap();
            assert!(inst.is_stable(&median), "median must be stable");
            // The egalitarian matching is also stable and its cost is
            // minimal over the set.
            let egal = inst.egalitarian(&all).unwrap();
            let best = all.iter().map(|m| inst.egalitarian_cost(m)).min().unwrap();
            assert_eq!(inst.egalitarian_cost(egal), best);
        }
    }

    #[test]
    fn rank_accessors() {
        let inst = classic_3x3();
        assert_eq!(inst.proposer_rank_of(0, 0), Some(0));
        assert_eq!(inst.proposer_rank_of(0, 2), Some(2));
        assert_eq!(inst.reviewer_rank_of(0, 1), Some(0));
        let truncated = StableInstance::new(vec![vec![0]], vec![vec![]]).unwrap();
        assert_eq!(truncated.reviewer_rank_of(0, 0), None);
    }

    /// Random instance with truncated lists on both sides.
    fn random_instance(rng: &mut StdRng, np: usize, nr: usize) -> StableInstance {
        let mut gen_side = |n: usize, m: usize| -> Vec<Vec<usize>> {
            (0..n)
                .map(|_| {
                    let mut all: Vec<usize> = (0..m).collect();
                    all.shuffle(rng);
                    let keep = rng.gen_range(0..=m);
                    all.truncate(keep);
                    all
                })
                .collect()
        };
        let p = gen_side(np, nr);
        let r = gen_side(nr, np);
        StableInstance::new(p, r).unwrap()
    }

    #[test]
    fn sparse_ranks_match_dense_on_random_instances() {
        // Same lists, sparse rank tables: every algorithm must return
        // identical results (not just equivalent ones).
        let mut rng = StdRng::seed_from_u64(0x5BA125E);
        for case in 0..200 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            let sparse = StableInstance::new_sparse(
                inst.proposer_lists.clone(),
                inst.reviewer_lists.clone(),
            )
            .unwrap();
            assert_eq!(inst.propose(), sparse.propose(), "case {case}");
            assert_eq!(
                inst.reviewer_optimal(),
                sparse.reviewer_optimal(),
                "case {case}"
            );
            let all = inst.enumerate_all(None);
            assert_eq!(all, sparse.enumerate_all(None), "case {case}");
            assert_eq!(
                inst.median_stable_matching(&all),
                sparse.median_stable_matching(&all),
                "case {case}"
            );
            for m in &all {
                assert_eq!(
                    inst.egalitarian_cost(m),
                    sparse.egalitarian_cost(m),
                    "case {case}"
                );
            }
        }
    }

    #[test]
    fn new_sparse_rejects_invalid_lists() {
        let err = StableInstance::new_sparse(vec![vec![5]], vec![vec![0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::IndexOutOfRange {
                side: "proposer",
                agent: 0,
                entry: 5
            }
        );
        let err = StableInstance::new_sparse(vec![vec![0]], vec![vec![0, 0]]).unwrap_err();
        assert_eq!(
            err,
            PreferenceError::DuplicateEntry {
                side: "reviewer",
                agent: 0,
                entry: 0
            }
        );
    }

    #[test]
    fn csr_dense_and_hashmap_rank_lookups_agree() {
        // The three rank layouts built from the same lists must answer
        // every single lookup identically — including NOT_RANKED misses,
        // empty rows and full rows — and run the core algorithms to the
        // same matchings.
        let mut rng = StdRng::seed_from_u64(0xC5A_2A6C);
        for case in 0..300 {
            let np = rng.gen_range(0..=8);
            let nr = rng.gen_range(0..=8);
            let dense = random_instance(&mut rng, np, nr);
            let csr = StableInstance::new_sparse(
                dense.proposer_lists.clone(),
                dense.reviewer_lists.clone(),
            )
            .unwrap();
            let hashmap = StableInstance::new_sparse_reference(
                dense.proposer_lists.clone(),
                dense.reviewer_lists.clone(),
            )
            .unwrap();
            for p in 0..np {
                for r in 0..nr {
                    let want = dense.proposer_rank_of(p, r);
                    assert_eq!(csr.proposer_rank_of(p, r), want, "case {case} p{p} r{r}");
                    assert_eq!(
                        hashmap.proposer_rank_of(p, r),
                        want,
                        "case {case} p{p} r{r}"
                    );
                    let want = dense.reviewer_rank_of(r, p);
                    assert_eq!(csr.reviewer_rank_of(r, p), want, "case {case} p{p} r{r}");
                    assert_eq!(
                        hashmap.reviewer_rank_of(r, p),
                        want,
                        "case {case} p{p} r{r}"
                    );
                }
            }
            assert_eq!(dense.propose(), csr.propose(), "case {case}");
            assert_eq!(dense.propose(), hashmap.propose(), "case {case}");
            assert_eq!(
                dense.reviewer_optimal(),
                csr.reviewer_optimal(),
                "case {case}"
            );
            assert_eq!(
                dense.reviewer_optimal(),
                hashmap.reviewer_optimal(),
                "case {case}"
            );
        }
    }

    #[test]
    fn all_three_layouts_reject_invalid_lists_identically() {
        // Same invalid input ⇒ same error from the dense, CSR and
        // reference-hashmap construction paths: same variant, side, agent
        // AND entry (i.e. the same scan order found it).
        let mut rng = StdRng::seed_from_u64(0xBAD_11575);
        for case in 0..200 {
            let np = rng.gen_range(1..=5);
            let nr = rng.gen_range(1..=5);
            let good = random_instance(&mut rng, np, nr);
            let mut p_lists = good.proposer_lists.clone();
            let mut r_lists = good.reviewer_lists.clone();
            // Corrupt a random list with either an out-of-range entry or
            // a duplicate (possibly both, in random order).
            let corrupt = |list: &mut Vec<usize>, other: usize, rng: &mut StdRng| {
                if rng.gen_bool(0.5) {
                    list.insert(rng.gen_range(0..=list.len()), other + rng.gen_range(0..3));
                }
                if list.is_empty() || rng.gen_bool(0.5) {
                    let dup = list
                        .first()
                        .copied()
                        .unwrap_or(0)
                        .min(other.saturating_sub(1));
                    list.insert(rng.gen_range(0..=list.len()), dup);
                    list.push(dup);
                }
            };
            if rng.gen_bool(0.5) {
                let p = rng.gen_range(0..np);
                corrupt(&mut p_lists[p], nr, &mut rng);
            } else {
                let r = rng.gen_range(0..nr);
                corrupt(&mut r_lists[r], np, &mut rng);
            }
            let dense = StableInstance::new(p_lists.clone(), r_lists.clone());
            let csr = StableInstance::new_sparse(p_lists.clone(), r_lists.clone());
            let hashmap = StableInstance::new_sparse_reference(p_lists, r_lists);
            let dense_err = dense.map(|_| ());
            assert_eq!(dense_err, csr.map(|_| ()), "case {case}");
            assert_eq!(dense_err, hashmap.map(|_| ()), "case {case}");
        }
    }

    #[test]
    fn everyone_ranks_everyone_exercises_dense_rows_exactly() {
        // Degenerate full-preference instance: every row crosses the
        // dense-row threshold, so every lookup takes the dense-pool fast
        // path — which must still agree with the dense layout bit-for-bit
        // on lookups, matchings and the full enumeration.
        let mut rng = StdRng::seed_from_u64(0xDE45E);
        let n = 12;
        let full_side = |rng: &mut StdRng| -> Vec<Vec<usize>> {
            (0..n)
                .map(|_| {
                    let mut all: Vec<usize> = (0..n).collect();
                    all.shuffle(rng);
                    all
                })
                .collect()
        };
        let p = full_side(&mut rng);
        let r = full_side(&mut rng);
        let dense = StableInstance::new(p.clone(), r.clone()).unwrap();
        let csr = StableInstance::new_sparse(p, r).unwrap();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(dense.proposer_rank_of(a, b), csr.proposer_rank_of(a, b));
                assert_eq!(dense.reviewer_rank_of(a, b), csr.reviewer_rank_of(a, b));
                // Full lists: every pair is mutually ranked.
                assert!(csr.proposer_rank_of(a, b).is_some());
            }
        }
        assert_eq!(dense.propose(), csr.propose());
        assert_eq!(dense.reviewer_optimal(), csr.reviewer_optimal());
        assert_eq!(dense.enumerate_all(Some(64)), csr.enumerate_all(Some(64)));
    }

    #[test]
    fn scratch_entry_points_are_bit_identical_across_reuse() {
        // One MatchScratch reused across many frames of varying shapes —
        // warm, cold and reviewer-optimal paths — must match the
        // allocating entry points exactly on every call, with results
        // recycled back into the pool between frames.
        let mut rng = StdRng::seed_from_u64(0x5C2A7C8);
        let mut scratch = MatchScratch::new();
        let mut seed: Vec<(usize, usize)> = Vec::new();
        for _ in 0..120 {
            let np = rng.gen_range(0..=7);
            let nr = rng.gen_range(0..=7);
            let inst = random_instance(&mut rng, np, nr);
            let cold = inst.propose_with(&mut scratch);
            assert_eq!(cold, inst.propose());
            let warm = inst.propose_seeded_with(&seed, &mut scratch);
            assert_eq!(warm, inst.propose_seeded(&seed));
            assert_eq!(warm, cold, "warm start must never change the result");
            let t_opt = inst.reviewer_optimal_seeded_with(&seed, &mut scratch);
            assert_eq!(t_opt, inst.reviewer_optimal());
            // Carry this frame's matching as the next frame's seed (sizes
            // change, so much of it will be pruned — that's the point).
            seed.clear();
            seed.extend(warm.pairs());
            scratch.recycle(cold);
            scratch.recycle(warm);
            scratch.recycle(t_opt);
        }
    }

    #[test]
    fn anytime_unlimited_equals_reviewer_optimal() {
        let unlimited = TimeBudget::unlimited();
        let mut rng = StdRng::seed_from_u64(0xA27);
        for case in 0..150 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            let search = inst.reviewer_optimal_anytime(&unlimited);
            assert_eq!(search.best, inst.reviewer_optimal(), "case {case}");
            assert!(!search.truncated, "case {case}");
            assert_eq!(search.reviewer_cost, inst.reviewer_cost(&search.best));
            assert!(search.lower_bound <= search.reviewer_cost, "case {case}");
            assert_eq!(search.gap(), search.reviewer_cost - search.lower_bound);
        }
    }

    #[test]
    fn anytime_budget_degrades_monotonically_and_stays_stable() {
        // Growing node caps can only improve (weakly) the reviewer cost,
        // every intermediate answer is a stable matching, and a zero
        // budget returns the proposer-optimal start.
        let mut rng = StdRng::seed_from_u64(0xA27B);
        for _ in 0..40 {
            let inst = random_instance(&mut rng, 6, 6);
            let s0 = inst.propose();
            let optimal = inst.reviewer_optimal();
            let mut prev_cost = u64::MAX;
            for cap in [0u64, 1, 2, 4, 8, 64, 4096] {
                let budget = crate::budget::TimeBudgetSpec::unlimited()
                    .with_node_cap(cap)
                    .start();
                let search = inst.reviewer_optimal_anytime(&budget);
                assert!(inst.is_stable(&search.best));
                assert!(search.reviewer_cost <= inst.reviewer_cost(&s0));
                assert!(search.reviewer_cost <= prev_cost, "cap {cap} regressed");
                prev_cost = search.reviewer_cost;
                if cap == 0 && search.reviewer_cost > search.lower_bound {
                    assert_eq!(search.best, s0);
                    assert!(search.truncated);
                }
            }
            assert_eq!(
                prev_cost,
                inst.reviewer_cost(&optimal),
                "4096 nodes is plenty at 6x6"
            );
        }
    }

    #[test]
    fn crossed_seed_cycle_is_dropped_and_warm_start_stays_exact() {
        // p0: r1 > r0, p1: r0 > r1; r0: p0 > p1, r1: p1 > p0.
        // The crossed seed {(p0,r0),(p1,r1)} is prefix-justified — each
        // pair's skip is "justified" by the other — but cyclically: no
        // serial proposal order reaches it. Naively resuming from it would
        // freeze a matching deferred acceptance never produces.
        let inst = StableInstance::new(vec![vec![1, 0], vec![0, 1]], vec![vec![0, 1], vec![1, 0]])
            .unwrap();
        let crossed = [(0, 0), (1, 1)];
        assert_eq!(inst.valid_warm_seed(&crossed), vec![]);
        let cold = inst.propose();
        assert_eq!(cold.proposer_partner(0), Some(1));
        assert_eq!(cold.proposer_partner(1), Some(0));
        assert_eq!(inst.propose_seeded(&crossed), cold);
    }

    #[test]
    fn garbage_seeds_are_pruned_and_harmless() {
        let inst = classic_3x3();
        let cold = inst.propose();
        // Out of range, duplicated proposer, duplicated reviewer — all
        // pruned; the valid remainder warm-starts to the same matching.
        let garbage = [(7, 0), (0, 9), (0, 0), (0, 1), (2, 0), (1, 1)];
        let kept = inst.valid_warm_seed(&garbage);
        for &(p, r) in &kept {
            assert!(inst.proposer_accepts(p, r) && inst.reviewer_accepts(r, p));
        }
        assert_eq!(inst.propose_seeded(&garbage), cold);
        assert_eq!(inst.propose_seeded(&[]), cold);
        assert_eq!(
            inst.reviewer_optimal_seeded(&garbage),
            inst.reviewer_optimal()
        );
    }

    #[test]
    fn own_matching_reseeds_to_itself() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..100 {
            let np = rng.gen_range(0..=7);
            let nr = rng.gen_range(0..=7);
            let inst = random_instance(&mut rng, np, nr);
            let cold = inst.propose();
            let seed: Vec<(usize, usize)> = cold.pairs().collect();
            assert_eq!(inst.propose_seeded(&seed), cold);
            let ro = inst.reviewer_optimal();
            let ro_seed: Vec<(usize, usize)> = ro.pairs().collect();
            assert_eq!(inst.reviewer_optimal_seeded(&ro_seed), ro);
        }
    }

    #[test]
    fn budgeted_enumeration_with_unlimited_budget_equals_enumerate_all() {
        let mut rng = StdRng::seed_from_u64(0xB0D6E7);
        let unlimited = TimeBudget::unlimited();
        for case in 0..200 {
            let np = rng.gen_range(0..=6);
            let nr = rng.gen_range(0..=6);
            let inst = random_instance(&mut rng, np, nr);
            for limit in [None, Some(1), Some(3)] {
                let e = inst.enumerate_budgeted(limit, &unlimited);
                assert!(!e.truncated, "case {case}: unlimited budget truncated");
                assert_eq!(e.matchings, inst.enumerate_all(limit), "case {case}");
            }
        }
    }

    #[test]
    fn node_cap_truncates_but_keeps_prefix_well_formed() {
        let mut rng = StdRng::seed_from_u64(0xCA9);
        let mut saw_truncation = false;
        for case in 0..200 {
            let np = rng.gen_range(2..=6);
            let nr = rng.gen_range(2..=6);
            let inst = random_instance(&mut rng, np, nr);
            let full = inst.enumerate_all(None);
            let budget = crate::budget::TimeBudgetSpec::unlimited()
                .with_node_cap(2)
                .start();
            let e = inst.enumerate_budgeted(None, &budget);
            assert!(e.nodes <= 2, "case {case}: cap overrun ({} nodes)", e.nodes);
            assert_eq!(e.matchings[0], inst.propose(), "case {case}");
            for m in &e.matchings {
                assert!(inst.is_stable(m), "case {case}: truncated prefix unstable");
            }
            // The collected prefix is a prefix of the full enumeration.
            assert_eq!(
                e.matchings[..],
                full[..e.matchings.len()],
                "case {case}: not a prefix"
            );
            if e.truncated {
                saw_truncation = true;
                assert!(e.matchings.len() <= full.len());
            } else {
                assert_eq!(e.matchings, full, "case {case}");
            }
        }
        assert!(saw_truncation, "cap of 2 never bit on 200 random instances");
    }

    #[test]
    fn expired_deadline_still_yields_proposer_optimal() {
        let inst = classic_3x3();
        let budget = crate::budget::TimeBudgetSpec::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .start();
        let e = inst.enumerate_budgeted(None, &budget);
        assert!(e.truncated);
        assert_eq!(e.matchings, vec![inst.propose()]);
        assert_eq!(e.nodes, 0);
    }

    #[test]
    fn enumerate_all_order_is_deterministic_and_brackets_the_lattice() {
        let mut rng = StdRng::seed_from_u64(0x0D0E);
        for case in 0..150 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_all(None);
            assert_eq!(all, inst.enumerate_all(None), "case {case}: order unstable");
            assert_eq!(
                all[0],
                inst.propose(),
                "case {case}: first not proposer-optimal"
            );
            let ro = inst.reviewer_optimal();
            assert!(all.contains(&ro), "case {case}: reviewer-optimal missing");
            // Proposer-side cost brackets: the proposer-optimal matching
            // minimises total proposer rank, the reviewer-optimal maximises
            // it over the stable set.
            let pcost =
                |m: &Matching| -> u64 { m.pairs().map(|(p, r)| u64::from(inst.prank(p, r))).sum() };
            let (lo, hi) = (pcost(&all[0]), pcost(&ro));
            for m in &all {
                assert!(inst.is_stable(m), "case {case}: unstable entry");
                assert!(
                    (lo..=hi).contains(&pcost(m)),
                    "case {case}: outside lattice"
                );
            }
        }
    }

    #[test]
    fn selectors_agree_with_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xE6A1);
        for case in 0..150 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let fast = inst.enumerate_all(None);
            let brute = inst.enumerate_brute_force();
            // Egalitarian: the selected cost equals the brute-force minimum.
            let egal = inst.egalitarian(&fast).unwrap();
            let best = brute
                .iter()
                .map(|m| inst.egalitarian_cost(m))
                .min()
                .unwrap();
            assert_eq!(inst.egalitarian_cost(egal), best, "case {case}");
            // Median: per-proposer medians are order-insensitive, so the
            // selection from either enumeration of the same set is equal.
            assert_eq!(
                inst.median_stable_matching(&fast),
                inst.median_stable_matching(&brute),
                "case {case}"
            );
        }
    }

    #[test]
    fn enumeration_matches_brute_force_on_many_random_instances() {
        let mut rng = StdRng::seed_from_u64(0xDEC0DE);
        for case in 0..300 {
            let np = rng.gen_range(0..=5);
            let nr = rng.gen_range(0..=5);
            let inst = random_instance(&mut rng, np, nr);
            let fast: Vec<_> = inst.enumerate_all(None);
            let fast_set: HashSet<_> = fast.iter().cloned().collect();
            assert_eq!(
                fast.len(),
                fast_set.len(),
                "case {case}: duplicates in enumeration"
            );
            let brute: HashSet<_> = inst.enumerate_brute_force().into_iter().collect();
            assert_eq!(fast_set, brute, "case {case}: sets differ");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Deferred acceptance always yields a stable matching.
        #[test]
        fn propose_always_stable(seed in any::<u64>(), np in 0usize..8, nr in 0usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let m = inst.propose();
            prop_assert!(inst.is_stable(&m));
        }

        /// Proposer-optimality: in every stable matching, each proposer does
        /// no better than under `propose()`.
        #[test]
        fn propose_is_proposer_optimal(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let best = inst.propose();
            for other in inst.enumerate_brute_force() {
                for p in 0..np {
                    let best_rank = best.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    let other_rank = other.proposer_partner(p)
                        .map(|r| inst.prank(p, r));
                    match (best_rank, other_rank) {
                        (Some(b), Some(o)) => prop_assert!(b <= o),
                        // Theorem 2 / rural hospitals: matched status agrees.
                        (None, Some(_)) | (Some(_), None) => prop_assert!(
                            false, "matched sets differ across stable matchings"
                        ),
                        (None, None) => {}
                    }
                }
            }
        }

        /// Rural hospitals (paper's Theorem 2): every stable matching
        /// matches the same set of proposers and reviewers.
        #[test]
        fn rural_hospitals(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let all = inst.enumerate_brute_force();
            prop_assert!(!all.is_empty());
            let matched_p: HashSet<usize> = all[0].pairs().map(|(p, _)| p).collect();
            let matched_r: HashSet<usize> = all[0].pairs().map(|(_, r)| r).collect();
            for m in &all {
                prop_assert_eq!(
                    m.pairs().map(|(p, _)| p).collect::<HashSet<_>>(), matched_p.clone());
                prop_assert_eq!(
                    m.pairs().map(|(_, r)| r).collect::<HashSet<_>>(), matched_r.clone());
            }
        }

        /// Reviewer-optimal matching is the reviewer-best among all stable
        /// matchings.
        #[test]
        fn reviewer_optimal_is_best_for_reviewers(
            seed in any::<u64>(), np in 0usize..6, nr in 0usize..6,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let ro = inst.reviewer_optimal();
            prop_assert!(inst.is_stable(&ro));
            for other in inst.enumerate_brute_force() {
                for r in 0..nr {
                    if let (Some(b), Some(o)) = (ro.reviewer_partner(r), other.reviewer_partner(r)) {
                        prop_assert!(inst.rrank(r, b) <= inst.rrank(r, o));
                    }
                }
            }
        }

        /// `enumerate_all` respects its cap and always includes the
        /// proposer-optimal matching first.
        #[test]
        fn enumerate_cap(seed in any::<u64>(), np in 0usize..6, nr in 0usize..6) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let capped = inst.enumerate_all(Some(2));
            prop_assert!(capped.len() <= 2);
            prop_assert_eq!(&capped[0], &inst.propose());
        }

        /// Warm starting from an *arbitrary* candidate seed — valid,
        /// stale, crossed, or garbage — always reproduces the cold
        /// matchings exactly, on both sides.
        #[test]
        fn seeded_matches_cold_for_random_seeds(
            seed in any::<u64>(), np in 0usize..8, nr in 0usize..8, pairs in 0usize..12,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let inst = random_instance(&mut rng, np, nr);
            let candidate: Vec<(usize, usize)> = (0..pairs)
                .map(|_| (rng.gen_range(0..np.max(1) + 2), rng.gen_range(0..nr.max(1) + 2)))
                .collect();
            prop_assert_eq!(inst.propose_seeded(&candidate), inst.propose());
            prop_assert_eq!(inst.reviewer_optimal_seeded(&candidate), inst.reviewer_optimal());
        }

        /// The rolling-frame scenario: the previous frame's matching seeds
        /// a *different* instance (the frame delta changed both sides'
        /// lists); the warm result still equals the new instance's cold
        /// result.
        #[test]
        fn previous_frame_matching_is_an_exact_seed(
            seed in any::<u64>(), np in 0usize..8, nr in 0usize..8,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let prev = random_instance(&mut rng, np, nr);
            let carried: Vec<(usize, usize)> = prev.propose().pairs().collect();
            let cur = random_instance(&mut rng, np, nr);
            prop_assert_eq!(cur.propose_seeded(&carried), cur.propose());
            prop_assert_eq!(cur.reviewer_optimal_seeded(&carried), cur.reviewer_optimal());
        }
    }
}
