//! Maximum-cardinality bipartite matching (Hopcroft–Karp).
//!
//! Used by the bottleneck assignment (the *Mini* baseline) to test whether
//! a cost threshold admits a full matching, and directly useful wherever a
//! maximum matching over an unweighted bipartite graph is needed. Runs in
//! `O(E·√V)`.

/// A maximum bipartite matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteMatching {
    /// `left_to_right[u]` = right vertex matched to left vertex `u`.
    pub left_to_right: Vec<Option<usize>>,
    /// `right_to_left[v]` = left vertex matched to right vertex `v`.
    pub right_to_left: Vec<Option<usize>>,
}

impl BipartiteMatching {
    /// Number of matched pairs.
    #[must_use]
    pub fn size(&self) -> usize {
        self.left_to_right.iter().flatten().count()
    }
}

const NIL: usize = usize::MAX;

/// Computes a maximum-cardinality matching of the bipartite graph with
/// `n_right` right vertices and adjacency lists `adj[u]` (right-vertex
/// indices) for each left vertex `u`.
///
/// # Panics
///
/// Panics if an adjacency entry is `>= n_right`.
///
/// # Examples
///
/// ```
/// use o2o_matching::max_bipartite_matching;
///
/// // Left 0 can take right 0 or 1; left 1 only right 0.
/// let m = max_bipartite_matching(2, &[vec![0, 1], vec![0]]);
/// assert_eq!(m.size(), 2);
/// assert_eq!(m.left_to_right[1], Some(0));
/// ```
#[must_use]
pub fn max_bipartite_matching(n_right: usize, adj: &[Vec<usize>]) -> BipartiteMatching {
    let n_left = adj.len();
    for (u, list) in adj.iter().enumerate() {
        for &v in list {
            assert!(v < n_right, "left {u} lists out-of-range right vertex {v}");
        }
    }
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];

    // BFS from all free left vertices, layering the graph.
    let bfs = |match_l: &[usize], match_r: &[usize], dist: &mut [usize]| -> bool {
        let mut queue = std::collections::VecDeque::new();
        for u in 0..n_left {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = usize::MAX;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                let w = match_r[v];
                if w == NIL {
                    found = true;
                } else if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        found
    };

    fn dfs(
        u: usize,
        adj: &[Vec<usize>],
        match_l: &mut [usize],
        match_r: &mut [usize],
        dist: &mut [usize],
    ) -> bool {
        for idx in 0..adj[u].len() {
            let v = adj[u][idx];
            let w = match_r[v];
            if w == NIL || (dist[w] == dist[u] + 1 && dfs(w, adj, match_l, match_r, dist)) {
                match_l[u] = v;
                match_r[v] = u;
                return true;
            }
        }
        dist[u] = usize::MAX;
        false
    }

    while bfs(&match_l, &match_r, &mut dist) {
        for u in 0..n_left {
            if match_l[u] == NIL {
                dfs(u, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    BipartiteMatching {
        left_to_right: match_l
            .into_iter()
            .map(|v| (v != NIL).then_some(v))
            .collect(),
        right_to_left: match_r
            .into_iter()
            .map(|u| (u != NIL).then_some(u))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        let m = max_bipartite_matching(4, &adj);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn forced_alternation() {
        // 0-{0,1}, 1-{0}: greedy giving 0→0 must be undone.
        let m = max_bipartite_matching(2, &[vec![0, 1], vec![0]]);
        assert_eq!(m.size(), 2);
        assert_eq!(m.left_to_right, vec![Some(1), Some(0)]);
    }

    #[test]
    fn empty_graph() {
        let m = max_bipartite_matching(0, &[]);
        assert_eq!(m.size(), 0);
        let m = max_bipartite_matching(3, &[vec![], vec![]]);
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn consistency_of_both_directions() {
        let m = max_bipartite_matching(3, &[vec![0, 2], vec![1], vec![1, 2]]);
        for (u, v) in m.left_to_right.iter().enumerate() {
            if let Some(v) = v {
                assert_eq!(m.right_to_left[*v], Some(u));
            }
        }
        assert_eq!(m.size(), 3);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_adjacency_panics() {
        let _ = max_bipartite_matching(1, &[vec![3]]);
    }

    /// Exponential-time maximum matching for verification.
    fn brute_force_max(n_right: usize, adj: &[Vec<usize>]) -> usize {
        fn rec(u: usize, adj: &[Vec<usize>], used: &mut Vec<bool>) -> usize {
            if u == adj.len() {
                return 0;
            }
            let mut best = rec(u + 1, adj, used); // skip u
            for &v in &adj[u] {
                if !used[v] {
                    used[v] = true;
                    best = best.max(1 + rec(u + 1, adj, used));
                    used[v] = false;
                }
            }
            best
        }
        rec(0, adj, &mut vec![false; n_right])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Hopcroft–Karp cardinality equals brute force on random graphs.
        #[test]
        fn matches_brute_force(
            edges in proptest::collection::vec((0usize..6, 0usize..6), 0..18),
        ) {
            let mut adj = vec![Vec::new(); 6];
            for (u, v) in edges {
                if !adj[u].contains(&v) {
                    adj[u].push(v);
                }
            }
            let fast = max_bipartite_matching(6, &adj);
            prop_assert_eq!(fast.size(), brute_force_max(6, &adj));
            // Matched edges must exist in the graph.
            for (u, v) in fast.left_to_right.iter().enumerate() {
                if let Some(v) = v {
                    prop_assert!(adj[u].contains(v));
                }
            }
        }
    }
}
