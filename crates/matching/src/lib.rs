//! Matching-algorithm substrate for the O2O taxi-dispatch reproduction.
//!
//! Every combinatorial engine used by the dispatch algorithms and the
//! baselines lives here, independent of any taxi-specific types:
//!
//! * [`stable`] — stable marriage with *incomplete preference lists*
//!   (the paper's dummy entries), proposer-optimal matching (Algorithm 1's
//!   engine), and enumeration of **all** stable matchings via BreakDispatch
//!   with the paper's Rules 1–3 (Algorithm 2's engine),
//! * [`hungarian`] — `O(n³)` minimum-cost bipartite assignment (the *Pair*
//!   baseline),
//! * [`hopcroft_karp`] — maximum-cardinality bipartite matching,
//! * [`bottleneck`] — bottleneck assignment minimising the maximum matched
//!   cost (the *Mini* baseline),
//! * [`set_packing`] — maximum set packing: greedy, local-search
//!   (`(k+2)/3`-style guarantee used by Algorithm 3) and an exact
//!   branch-and-bound for validation,
//! * [`budget`] — per-frame computation budgets ([`TimeBudget`]) bounding
//!   the BreakDispatch enumeration and driving the degradation ladder in
//!   `o2o-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bottleneck;
pub mod budget;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod set_packing;
pub mod stable;

pub use bottleneck::bottleneck_assignment;
pub use budget::{TimeBudget, TimeBudgetSpec};
pub use hopcroft_karp::max_bipartite_matching;
pub use hungarian::min_cost_assignment;
pub use set_packing::{SetPacking, SetPackingStrategy};
pub use stable::{
    AnytimeSearch, Enumeration, MatchScratch, Matching, PreferenceError, StableInstance,
};
