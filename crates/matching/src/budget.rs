//! Per-frame computation budgets for graceful degradation.
//!
//! A dispatch frame in a live system has a deadline: the next frame
//! arrives whether or not the matcher finished. [`TimeBudgetSpec`] is the
//! declarative configuration (how much wall-clock and/or how many
//! enumeration nodes a frame may spend); [`TimeBudget`] is one frame's
//! running instance of it, with the clock started. Consumers poll
//! [`TimeBudget::exhausted`] at stage boundaries and fall back to a
//! cheaper algorithm instead of overrunning — see the degradation ladder
//! in `o2o-core` and [`StableInstance::enumerate_budgeted`].
//!
//! [`StableInstance::enumerate_budgeted`]: crate::StableInstance::enumerate_budgeted

use std::time::{Duration, Instant};

/// Declarative budget configuration: what one dispatch frame may spend.
///
/// The default is unlimited (no deadline, no node cap), which makes every
/// budget-aware code path a strict no-op relative to its unbudgeted
/// twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeBudgetSpec {
    /// Wall-clock allowance per frame, measured from
    /// [`TimeBudgetSpec::start`]. `None` = no deadline.
    pub frame_deadline: Option<Duration>,
    /// Cap on BreakDispatch nodes explored per enumeration (see
    /// [`StableInstance::enumerate_budgeted`]). `None` = unbounded.
    /// Deterministic, unlike the wall-clock deadline, so tests prefer it.
    ///
    /// [`StableInstance::enumerate_budgeted`]: crate::StableInstance::enumerate_budgeted
    pub node_cap: Option<u64>,
}

impl TimeBudgetSpec {
    /// No deadline and no node cap.
    #[must_use]
    pub fn unlimited() -> Self {
        TimeBudgetSpec::default()
    }

    /// Sets the per-frame wall-clock allowance.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.frame_deadline = Some(deadline);
        self
    }

    /// Sets the enumeration node cap.
    #[must_use]
    pub fn with_node_cap(mut self, cap: u64) -> Self {
        self.node_cap = Some(cap);
        self
    }

    /// Whether this spec constrains nothing.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.frame_deadline.is_none() && self.node_cap.is_none()
    }

    /// Starts the frame's clock: the returned [`TimeBudget`]'s deadline is
    /// `now + frame_deadline`.
    #[must_use]
    pub fn start(&self) -> TimeBudget {
        TimeBudget {
            deadline: self.frame_deadline.map(|d| Instant::now() + d),
            node_cap: self.node_cap,
        }
    }
}

/// One frame's running budget (spec + started clock).
#[derive(Debug, Clone, Copy)]
pub struct TimeBudget {
    deadline: Option<Instant>,
    node_cap: Option<u64>,
}

impl TimeBudget {
    /// A budget that never exhausts.
    #[must_use]
    pub fn unlimited() -> Self {
        TimeBudget {
            deadline: None,
            node_cap: None,
        }
    }

    /// Whether the wall-clock deadline has passed. Always `false` without
    /// a deadline; the node cap is enforced by the enumeration itself,
    /// not here.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The enumeration node cap, if any.
    #[must_use]
    pub fn node_cap(&self) -> Option<u64> {
        self.node_cap
    }

    /// Whether this budget constrains nothing (budget-aware paths treat
    /// this as "run the unbudgeted algorithm").
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.node_cap.is_none()
    }
}

impl Default for TimeBudget {
    fn default() -> Self {
        TimeBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = TimeBudgetSpec::unlimited().start();
        assert!(b.is_unlimited());
        assert!(!b.exhausted());
        assert_eq!(b.node_cap(), None);
    }

    #[test]
    fn zero_deadline_exhausts_immediately() {
        let b = TimeBudgetSpec::unlimited()
            .with_deadline(Duration::ZERO)
            .start();
        assert!(!b.is_unlimited());
        assert!(b.exhausted());
    }

    #[test]
    fn generous_deadline_is_not_exhausted_yet() {
        let b = TimeBudgetSpec::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .start();
        assert!(!b.exhausted());
    }

    #[test]
    fn node_cap_round_trips() {
        let spec = TimeBudgetSpec::unlimited().with_node_cap(17);
        assert!(!spec.is_unlimited());
        assert_eq!(spec.start().node_cap(), Some(17));
    }
}
