//! Bottleneck bipartite assignment: minimise the maximum matched cost.
//!
//! Engine for the *Mini* baseline ("a bipartite matching method that
//! minimizes the maximal cost of a matched request-taxi pair", Hanna et
//! al.). The solver binary-searches the sorted distinct costs, using
//! Hopcroft–Karp to check whether the threshold graph still admits a
//! matching of size `min(rows, cols)`.

use crate::hopcroft_karp::max_bipartite_matching;
use crate::hungarian::CostMatrix;

/// Result of a bottleneck assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct BottleneckResult {
    /// Matched `(row, col)` pairs; always `min(rows, cols)` of them (for a
    /// non-empty matrix).
    pub pairs: Vec<(usize, usize)>,
    /// The smallest achievable maximum matched cost (`0.0` for an empty
    /// matrix).
    pub bottleneck: f64,
}

/// Computes a full-size matching minimising the maximum matched cost.
///
/// All `min(rows, cols)` pairs are matched; among all such matchings the
/// returned one minimises `max` cost. Runs in `O(E·√V · log E)`.
///
/// # Examples
///
/// ```
/// use o2o_matching::bottleneck_assignment;
/// use o2o_matching::hungarian::CostMatrix;
///
/// let costs = CostMatrix::from_rows(vec![
///     vec![1.0, 9.0],
///     vec![2.0, 3.0],
/// ])?;
/// let r = bottleneck_assignment(&costs);
/// // Matching (0→0, 1→1) has max cost 3; the alternative has max 9.
/// assert_eq!(r.bottleneck, 3.0);
/// # Ok::<(), o2o_matching::hungarian::CostMatrixError>(())
/// ```
#[must_use]
pub fn bottleneck_assignment(costs: &CostMatrix) -> BottleneckResult {
    let n = costs.rows();
    let m = costs.cols();
    let target = n.min(m);
    if target == 0 {
        return BottleneckResult {
            pairs: Vec::new(),
            bottleneck: 0.0,
        };
    }
    let mut distinct: Vec<f64> = (0..n)
        .flat_map(|i| (0..m).map(move |j| (i, j)))
        .map(|(i, j)| costs.get(i, j))
        .collect();
    distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite costs"));
    distinct.dedup();

    let matching_at = |threshold: f64| {
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|i| (0..m).filter(|&j| costs.get(i, j) <= threshold).collect())
            .collect();
        max_bipartite_matching(m, &adj)
    };

    // Binary search the smallest threshold admitting a full matching.
    let mut lo = 0usize;
    let mut hi = distinct.len() - 1; // the full graph always works
    while lo < hi {
        let mid = (lo + hi) / 2;
        if matching_at(distinct[mid]).size() >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let bottleneck = distinct[lo];
    let matching = matching_at(bottleneck);
    debug_assert_eq!(matching.size(), target);
    let pairs = matching
        .left_to_right
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| (i, j)))
        .collect();
    BottleneckResult { pairs, bottleneck }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn picks_min_max_over_min_total() {
        // Min-total matching is (0→0, 1→1): total 1+10=11, max 10.
        // Bottleneck matching is (0→1, 1→0): total 4+4=8? max 4.
        let costs = CostMatrix::from_rows(vec![vec![1.0, 4.0], vec![4.0, 10.0]]).unwrap();
        let r = bottleneck_assignment(&costs);
        assert_eq!(r.bottleneck, 4.0);
        assert_eq!(r.pairs.len(), 2);
    }

    #[test]
    fn rectangular_matches_min_side() {
        let costs = CostMatrix::from_rows(vec![vec![5.0, 1.0, 7.0], vec![2.0, 8.0, 3.0]]).unwrap();
        let r = bottleneck_assignment(&costs);
        assert_eq!(r.pairs.len(), 2);
        assert_eq!(r.bottleneck, 2.0); // 0→1 (1), 1→0 (2)
    }

    #[test]
    fn empty_matrix() {
        let r = bottleneck_assignment(&CostMatrix::from_rows(vec![]).unwrap());
        assert!(r.pairs.is_empty());
        assert_eq!(r.bottleneck, 0.0);
    }

    #[test]
    fn single_cell() {
        let r = bottleneck_assignment(&CostMatrix::from_rows(vec![vec![42.0]]).unwrap());
        assert_eq!(r.pairs, vec![(0, 0)]);
        assert_eq!(r.bottleneck, 42.0);
    }

    fn brute_force_bottleneck(costs: &CostMatrix) -> f64 {
        fn rec(costs: &CostMatrix, row: usize, used: &mut Vec<bool>, matched: usize) -> f64 {
            let target = costs.rows().min(costs.cols());
            if matched == target {
                return f64::NEG_INFINITY; // no more cost contributions
            }
            if row == costs.rows() {
                return f64::INFINITY; // failed to match enough
            }
            let mut best = f64::INFINITY;
            // Option: skip this row (only useful when rows > cols).
            if costs.rows() - row > target - matched {
                best = rec(costs, row + 1, used, matched);
            }
            for c in 0..costs.cols() {
                if !used[c] {
                    used[c] = true;
                    let rest = rec(costs, row + 1, used, matched + 1);
                    used[c] = false;
                    best = best.min(costs.get(row, c).max(rest));
                }
            }
            best
        }
        let r = rec(costs, 0, &mut vec![false; costs.cols()], 0);
        if r == f64::NEG_INFINITY {
            0.0
        } else {
            r
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Bottleneck value matches brute force, and the returned pairs
        /// realise it.
        #[test]
        fn matches_brute_force(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..50.0f64, 3), 1..5),
        ) {
            let costs = CostMatrix::from_rows(rows).unwrap();
            let fast = bottleneck_assignment(&costs);
            let brute = brute_force_bottleneck(&costs);
            prop_assert!((fast.bottleneck - brute).abs() < 1e-9,
                "fast {} vs brute {}", fast.bottleneck, brute);
            prop_assert_eq!(fast.pairs.len(), costs.rows().min(costs.cols()));
            let realised = fast.pairs.iter()
                .map(|&(i, j)| costs.get(i, j))
                .fold(0.0f64, f64::max);
            prop_assert!(realised <= fast.bottleneck + 1e-9);
        }
    }
}
