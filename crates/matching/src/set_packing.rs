//! Maximum set packing — the first stage of the paper's Algorithm 3.
//!
//! Given feasible sharing groups `C = {c_k}` over the requests, Algorithm 3
//! "maximally packs passenger requests to feasible subsets": choose as many
//! pairwise-disjoint `c_k` as possible (Eqs. 1–3, the Maximum Set Packing
//! Problem). The paper uses an approximation with ratio `(max_k |c_k|+2)/3`
//! \[21\]; with the practical bound `|c_k| ≤ 3` that is 5/3.
//!
//! This module provides three interchangeable solvers:
//!
//! * [`SetPackingStrategy::Greedy`] — maximal greedy packing (smallest sets
//!   first),
//! * [`SetPackingStrategy::LocalSearch`] — greedy followed by
//!   Hurkens–Schrijver-style `(1 → 2)` swap improvements until a local
//!   optimum, attaining the paper's quality target in practice,
//! * [`SetPackingStrategy::Exact`] — branch-and-bound, exponential, for
//!   small instances, tests and the packing-quality ablation.

use std::fmt;

/// Which algorithm [`SetPacking::pack`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetPackingStrategy {
    /// Maximal greedy packing, smallest sets first. `O(Σ|c_k| log)`.
    Greedy,
    /// Greedy plus `(1 → 2)` local-search swaps — the paper's choice.
    #[default]
    LocalSearch,
    /// Exact branch-and-bound (exponential; use only for small instances).
    Exact,
}

/// Errors from constructing a [`SetPacking`] instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetPackingError {
    /// A set referenced an item `>= n_items`.
    ItemOutOfRange {
        /// Index of the offending set.
        set: usize,
        /// The out-of-range item.
        item: usize,
    },
    /// A set contained the same item twice.
    DuplicateItem {
        /// Index of the offending set.
        set: usize,
        /// The repeated item.
        item: usize,
    },
    /// A set was empty (an empty set packs trivially and is almost always
    /// a caller bug).
    EmptySet {
        /// Index of the offending set.
        set: usize,
    },
}

impl fmt::Display for SetPackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetPackingError::ItemOutOfRange { set, item } => {
                write!(f, "set {set} contains out-of-range item {item}")
            }
            SetPackingError::DuplicateItem { set, item } => {
                write!(f, "set {set} contains item {item} twice")
            }
            SetPackingError::EmptySet { set } => write!(f, "set {set} is empty"),
        }
    }
}

impl std::error::Error for SetPackingError {}

/// A maximum-set-packing instance over items `0..n_items`.
///
/// # Examples
///
/// ```
/// use o2o_matching::{SetPacking, SetPackingStrategy};
///
/// // Items 0..4; sets {0,1}, {1,2}, {2,3}.
/// let inst = SetPacking::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]])?;
/// let chosen = inst.pack(SetPackingStrategy::Exact);
/// assert_eq!(chosen.len(), 2); // {0,1} and {2,3}
/// # Ok::<(), o2o_matching::set_packing::SetPackingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetPacking {
    n_items: usize,
    sets: Vec<Vec<usize>>,
    /// `conflicts[k]` = indices of sets sharing an item with set `k`.
    conflicts: Vec<Vec<usize>>,
}

impl SetPacking {
    /// Builds an instance, validating the sets and precomputing the
    /// pairwise conflict graph.
    ///
    /// # Errors
    ///
    /// Returns [`SetPackingError`] for out-of-range items, duplicate items
    /// within a set, or empty sets.
    pub fn new(n_items: usize, sets: Vec<Vec<usize>>) -> Result<Self, SetPackingError> {
        for (k, set) in sets.iter().enumerate() {
            if set.is_empty() {
                return Err(SetPackingError::EmptySet { set: k });
            }
            let mut seen = vec![false; n_items];
            for &item in set {
                if item >= n_items {
                    return Err(SetPackingError::ItemOutOfRange { set: k, item });
                }
                if seen[item] {
                    return Err(SetPackingError::DuplicateItem { set: k, item });
                }
                seen[item] = true;
            }
        }
        // item -> sets containing it
        let mut by_item: Vec<Vec<usize>> = vec![Vec::new(); n_items];
        for (k, set) in sets.iter().enumerate() {
            for &item in set {
                by_item[item].push(k);
            }
        }
        let mut conflicts: Vec<Vec<usize>> = vec![Vec::new(); sets.len()];
        for (k, set) in sets.iter().enumerate() {
            let mut cs: Vec<usize> = set
                .iter()
                .flat_map(|&item| by_item[item].iter().copied())
                .filter(|&other| other != k)
                .collect();
            cs.sort_unstable();
            cs.dedup();
            conflicts[k] = cs;
        }
        Ok(SetPacking {
            n_items,
            sets,
            conflicts,
        })
    }

    /// Number of items in the universe.
    #[must_use]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of candidate sets.
    #[must_use]
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// The items of set `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn set(&self, k: usize) -> &[usize] {
        &self.sets[k]
    }

    /// Packs disjoint sets with the requested strategy, returning the
    /// chosen set indices in ascending order.
    ///
    /// The result is always a valid packing (pairwise disjoint) and always
    /// *maximal* (no further set can be added).
    #[must_use]
    pub fn pack(&self, strategy: SetPackingStrategy) -> Vec<usize> {
        match strategy {
            SetPackingStrategy::Greedy => self.greedy(),
            SetPackingStrategy::LocalSearch => self.local_search(self.greedy()),
            SetPackingStrategy::Exact => self.exact(),
        }
    }

    /// Checks that `chosen` is a valid packing (indices in range, pairwise
    /// disjoint).
    #[must_use]
    pub fn is_valid_packing(&self, chosen: &[usize]) -> bool {
        let mut used = vec![false; self.n_items];
        for &k in chosen {
            if k >= self.sets.len() {
                return false;
            }
            for &item in &self.sets[k] {
                if used[item] {
                    return false;
                }
                used[item] = true;
            }
        }
        true
    }

    /// Packs disjoint sets maximising **total weight** instead of count,
    /// with the same greedy + `(1 → 2)` local-search machinery. Weights
    /// must be non-negative; `weights.len()` must equal
    /// [`SetPacking::n_sets`].
    ///
    /// Algorithm 3's default objective (the paper's Eq. 1) is the
    /// unweighted count; weighting each group by its size switches the
    /// objective to *covered requests* — the count-vs-coverage ablation.
    ///
    /// # Panics
    ///
    /// Panics if `weights` has the wrong length or contains a negative or
    /// non-finite weight.
    #[must_use]
    pub fn pack_weighted(&self, strategy: SetPackingStrategy, weights: &[f64]) -> Vec<usize> {
        assert_eq!(weights.len(), self.sets.len(), "one weight per set");
        for (k, &w) in weights.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "set {k} has invalid weight {w}");
        }
        match strategy {
            SetPackingStrategy::Greedy => self.greedy_weighted(weights),
            SetPackingStrategy::LocalSearch => {
                self.local_search_weighted(self.greedy_weighted(weights), weights)
            }
            SetPackingStrategy::Exact => self.exact_weighted(weights),
        }
    }

    /// Total weight of a packing under `weights`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `weights` has the wrong
    /// length.
    #[must_use]
    pub fn packing_weight(&self, chosen: &[usize], weights: &[f64]) -> f64 {
        assert_eq!(weights.len(), self.sets.len(), "one weight per set");
        chosen.iter().map(|&k| weights[k]).sum()
    }

    fn greedy_weighted(&self, weights: &[f64]) -> Vec<usize> {
        // Highest weight per blocked item first — the natural greedy for
        // weighted packing.
        let mut order: Vec<usize> = (0..self.sets.len()).collect();
        order.sort_by(|&a, &b| {
            let da = weights[a] / self.sets[a].len() as f64;
            let db = weights[b] / self.sets[b].len() as f64;
            db.partial_cmp(&da)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut used = vec![false; self.n_items];
        let mut chosen = Vec::new();
        for k in order {
            if self.sets[k].iter().all(|&item| !used[item]) {
                for &item in &self.sets[k] {
                    used[item] = true;
                }
                chosen.push(k);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    fn local_search_weighted(&self, start: Vec<usize>, weights: &[f64]) -> Vec<usize> {
        let mut in_pack = vec![false; self.sets.len()];
        for &k in &start {
            in_pack[k] = true;
        }
        let mut item_owner: Vec<Option<usize>> = vec![None; self.n_items];
        for &k in &start {
            for &item in &self.sets[k] {
                item_owner[item] = Some(k);
            }
        }
        loop {
            let mut improved = false;
            // (0 → 1): add any conflict-free set with positive weight.
            for k in 0..self.sets.len() {
                if !in_pack[k]
                    && weights[k] > 0.0
                    && self.sets[k].iter().all(|&i| item_owner[i].is_none())
                {
                    in_pack[k] = true;
                    for &i in &self.sets[k] {
                        item_owner[i] = Some(k);
                    }
                    improved = true;
                }
            }
            // (1 → 1) and (1 → 2): replace one chosen set when the
            // replacement weighs more.
            'outer: for a in 0..self.sets.len() {
                if in_pack[a] {
                    continue;
                }
                let blockers_a = self.blockers(a, &item_owner);
                let w = match blockers_a.as_slice() {
                    [w] => *w,
                    _ => continue,
                };
                // (1 → 1)
                if weights[a] > weights[w] + 1e-12 {
                    in_pack[w] = false;
                    for &i in &self.sets[w] {
                        item_owner[i] = None;
                    }
                    in_pack[a] = true;
                    for &i in &self.sets[a] {
                        item_owner[i] = Some(a);
                    }
                    improved = true;
                    break 'outer;
                }
                // (1 → 2)
                for &b in self.conflicts_complement_candidates(w) {
                    if in_pack[b] || b == a || self.sets_conflict(a, b) {
                        continue;
                    }
                    let blockers_b = self.blockers(b, &item_owner);
                    if blockers_b.iter().all(|&x| x == w)
                        && weights[a] + weights[b] > weights[w] + 1e-12
                    {
                        in_pack[w] = false;
                        for &i in &self.sets[w] {
                            item_owner[i] = None;
                        }
                        for s in [a, b] {
                            in_pack[s] = true;
                            for &i in &self.sets[s] {
                                item_owner[i] = Some(s);
                            }
                        }
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let mut chosen: Vec<usize> = (0..self.sets.len()).filter(|&k| in_pack[k]).collect();
        chosen.sort_unstable();
        chosen
    }

    fn exact_weighted(&self, weights: &[f64]) -> Vec<usize> {
        fn rec(
            inst: &SetPacking,
            weights: &[f64],
            k: usize,
            current: &mut Vec<usize>,
            current_w: f64,
            used: &mut Vec<bool>,
            best: &mut (Vec<usize>, f64),
        ) {
            // Upper bound: everything remaining is takeable.
            let remaining: f64 = (k..inst.sets.len()).map(|i| weights[i]).sum();
            if current_w + remaining <= best.1 {
                return;
            }
            if k == inst.sets.len() {
                if current_w > best.1 {
                    *best = (current.clone(), current_w);
                }
                return;
            }
            if inst.sets[k].iter().all(|&i| !used[i]) {
                for &i in &inst.sets[k] {
                    used[i] = true;
                }
                current.push(k);
                rec(
                    inst,
                    weights,
                    k + 1,
                    current,
                    current_w + weights[k],
                    used,
                    best,
                );
                current.pop();
                for &i in &inst.sets[k] {
                    used[i] = false;
                }
            }
            rec(inst, weights, k + 1, current, current_w, used, best);
        }
        let mut best = (Vec::new(), 0.0);
        let mut current = Vec::new();
        let mut used = vec![false; self.n_items];
        rec(self, weights, 0, &mut current, 0.0, &mut used, &mut best);
        let mut out = best.0;
        out.sort_unstable();
        out
    }

    fn greedy(&self) -> Vec<usize> {
        // Smallest sets first: each chosen set blocks the fewest items.
        let mut order: Vec<usize> = (0..self.sets.len()).collect();
        order.sort_by_key(|&k| (self.sets[k].len(), k));
        let mut used = vec![false; self.n_items];
        let mut chosen = Vec::new();
        for k in order {
            if self.sets[k].iter().all(|&item| !used[item]) {
                for &item in &self.sets[k] {
                    used[item] = true;
                }
                chosen.push(k);
            }
        }
        chosen.sort_unstable();
        chosen
    }

    fn local_search(&self, start: Vec<usize>) -> Vec<usize> {
        let mut in_pack = vec![false; self.sets.len()];
        for &k in &start {
            in_pack[k] = true;
        }
        let mut item_owner: Vec<Option<usize>> = vec![None; self.n_items];
        for &k in &start {
            for &item in &self.sets[k] {
                item_owner[item] = Some(k);
            }
        }
        // Repeat until no improving move. Moves:
        //  (0 → 1) add any conflict-free set (keeps the packing maximal);
        //  (1 → 2) remove one chosen set to admit two new disjoint sets.
        loop {
            let mut improved = false;
            // (0 → 1)
            for (k, chosen) in in_pack.iter_mut().enumerate() {
                if !*chosen && self.sets[k].iter().all(|&i| item_owner[i].is_none()) {
                    *chosen = true;
                    for &i in &self.sets[k] {
                        item_owner[i] = Some(k);
                    }
                    improved = true;
                }
            }
            // (1 → 2): for every unchosen set a blocked by exactly one
            // chosen set w, look for an unchosen set b disjoint from a that
            // is blocked only by w (or nothing).
            'outer: for a in 0..self.sets.len() {
                if in_pack[a] {
                    continue;
                }
                let blockers_a = self.blockers(a, &item_owner);
                let w = match blockers_a.as_slice() {
                    [w] => *w,
                    _ => continue,
                };
                for &b in self.conflicts_complement_candidates(w) {
                    if in_pack[b] || b == a || self.sets_conflict(a, b) {
                        continue;
                    }
                    let blockers_b = self.blockers(b, &item_owner);
                    if blockers_b.iter().all(|&x| x == w) {
                        // Swap: remove w, add a and b.
                        in_pack[w] = false;
                        for &i in &self.sets[w] {
                            item_owner[i] = None;
                        }
                        for (s, owner) in [(a, Some(a)), (b, Some(b))] {
                            in_pack[s] = true;
                            for &i in &self.sets[s] {
                                item_owner[i] = owner;
                            }
                        }
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let mut chosen: Vec<usize> = (0..self.sets.len()).filter(|&k| in_pack[k]).collect();
        chosen.sort_unstable();
        chosen
    }

    /// Chosen sets currently blocking set `k`, deduplicated.
    fn blockers(&self, k: usize, item_owner: &[Option<usize>]) -> Vec<usize> {
        let mut out: Vec<usize> = self.sets[k].iter().filter_map(|&i| item_owner[i]).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Candidate partners for a `(1 → 2)` swap that removes blocker `w`:
    /// the sets adjacent to `w` in the conflict graph, ascending.
    ///
    /// This is exhaustive, not a heuristic. When the swap is examined, the
    /// `(0 → 1)` phase has just run, so every unchosen set has at least one
    /// blocker (in the weighted search, positive-weight sets do; a
    /// zero-blocker partner with weight ≤ 0 can never make the swap
    /// improving once `(1 → 1)` has been ruled out). A partner `b` must
    /// have blockers ⊆ `{w}`, hence exactly `{w}` — so `b` shares an item
    /// with `w` and is in `conflicts[w]`. The list is sorted ascending, the
    /// same order as the previous `0..n_sets` scan, so the first qualifying
    /// `b` — and therefore the whole search trajectory — is unchanged.
    fn conflicts_complement_candidates(&self, w: usize) -> &[usize] {
        &self.conflicts[w]
    }

    fn sets_conflict(&self, a: usize, b: usize) -> bool {
        self.conflicts[a].binary_search(&b).is_ok()
    }

    fn exact(&self) -> Vec<usize> {
        let mut best = Vec::new();
        let mut current = Vec::new();
        let mut used = vec![false; self.n_items];
        self.exact_rec(0, &mut current, &mut used, &mut best);
        best.sort_unstable();
        best
    }

    fn exact_rec(
        &self,
        k: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        best: &mut Vec<usize>,
    ) {
        if current.len() + (self.sets.len() - k) <= best.len() {
            return; // even taking every remaining set cannot win
        }
        if k == self.sets.len() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        // Branch 1: take set k if disjoint.
        if self.sets[k].iter().all(|&i| !used[i]) {
            for &i in &self.sets[k] {
                used[i] = true;
            }
            current.push(k);
            self.exact_rec(k + 1, current, used, best);
            current.pop();
            for &i in &self.sets[k] {
                used[i] = false;
            }
        }
        // Branch 2: skip set k.
        self.exact_rec(k + 1, current, used, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chain_instance_exact() {
        let inst = SetPacking::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let exact = inst.pack(SetPackingStrategy::Exact);
        assert_eq!(exact, vec![0, 2]);
        assert!(inst.is_valid_packing(&exact));
    }

    #[test]
    fn greedy_is_maximal() {
        let inst = SetPacking::new(
            6,
            vec![vec![0, 1, 2], vec![3, 4, 5], vec![2, 3], vec![0, 5]],
        )
        .unwrap();
        let g = inst.pack(SetPackingStrategy::Greedy);
        assert!(inst.is_valid_packing(&g));
        // Maximality: no unchosen set is disjoint from the packing.
        let mut used = [false; 6];
        for &k in &g {
            for &i in inst.set(k) {
                used[i] = true;
            }
        }
        for k in 0..inst.n_sets() {
            if !g.contains(&k) {
                assert!(inst.set(k).iter().any(|&i| used[i]), "set {k} addable");
            }
        }
    }

    #[test]
    fn local_search_beats_bad_greedy() {
        // Greedy (smallest-first, then index) takes {1,2} first and blocks
        // both {0,1} and {2,3}; local search should recover the 2-packing.
        let inst = SetPacking::new(4, vec![vec![1, 2], vec![0, 1], vec![2, 3]]).unwrap();
        let greedy = inst.pack(SetPackingStrategy::Greedy);
        assert_eq!(greedy.len(), 1);
        let ls = inst.pack(SetPackingStrategy::LocalSearch);
        assert_eq!(ls.len(), 2);
        assert!(inst.is_valid_packing(&ls));
    }

    /// The pre-optimisation `(1 → 2)` local search, scanning **all** sets
    /// for the swap partner instead of only `w`'s conflict neighbours.
    /// Kept verbatim (modulo the scan) as the oracle for
    /// `restricted_candidate_scan_matches_full_scan`.
    fn reference_local_search(inst: &SetPacking, start: Vec<usize>) -> Vec<usize> {
        let mut in_pack = vec![false; inst.sets.len()];
        for &k in &start {
            in_pack[k] = true;
        }
        let mut item_owner: Vec<Option<usize>> = vec![None; inst.n_items];
        for &k in &start {
            for &item in &inst.sets[k] {
                item_owner[item] = Some(k);
            }
        }
        loop {
            let mut improved = false;
            for (k, chosen) in in_pack.iter_mut().enumerate() {
                if !*chosen && inst.sets[k].iter().all(|&i| item_owner[i].is_none()) {
                    *chosen = true;
                    for &i in &inst.sets[k] {
                        item_owner[i] = Some(k);
                    }
                    improved = true;
                }
            }
            'outer: for a in 0..inst.sets.len() {
                if in_pack[a] {
                    continue;
                }
                let blockers_a = inst.blockers(a, &item_owner);
                let w = match blockers_a.as_slice() {
                    [w] => *w,
                    _ => continue,
                };
                for b in 0..inst.sets.len() {
                    if in_pack[b] || b == a || inst.sets_conflict(a, b) {
                        continue;
                    }
                    let blockers_b = inst.blockers(b, &item_owner);
                    if blockers_b.iter().all(|&x| x == w) {
                        in_pack[w] = false;
                        for &i in &inst.sets[w] {
                            item_owner[i] = None;
                        }
                        for (s, owner) in [(a, Some(a)), (b, Some(b))] {
                            in_pack[s] = true;
                            for &i in &inst.sets[s] {
                                item_owner[i] = owner;
                            }
                        }
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let mut chosen: Vec<usize> = (0..inst.sets.len()).filter(|&k| in_pack[k]).collect();
        chosen.sort_unstable();
        chosen
    }

    /// Weighted counterpart of [`reference_local_search`].
    fn reference_local_search_weighted(
        inst: &SetPacking,
        start: Vec<usize>,
        weights: &[f64],
    ) -> Vec<usize> {
        let mut in_pack = vec![false; inst.sets.len()];
        for &k in &start {
            in_pack[k] = true;
        }
        let mut item_owner: Vec<Option<usize>> = vec![None; inst.n_items];
        for &k in &start {
            for &item in &inst.sets[k] {
                item_owner[item] = Some(k);
            }
        }
        loop {
            let mut improved = false;
            for k in 0..inst.sets.len() {
                if !in_pack[k]
                    && weights[k] > 0.0
                    && inst.sets[k].iter().all(|&i| item_owner[i].is_none())
                {
                    in_pack[k] = true;
                    for &i in &inst.sets[k] {
                        item_owner[i] = Some(k);
                    }
                    improved = true;
                }
            }
            'outer: for a in 0..inst.sets.len() {
                if in_pack[a] {
                    continue;
                }
                let blockers_a = inst.blockers(a, &item_owner);
                let w = match blockers_a.as_slice() {
                    [w] => *w,
                    _ => continue,
                };
                if weights[a] > weights[w] + 1e-12 {
                    in_pack[w] = false;
                    for &i in &inst.sets[w] {
                        item_owner[i] = None;
                    }
                    in_pack[a] = true;
                    for &i in &inst.sets[a] {
                        item_owner[i] = Some(a);
                    }
                    improved = true;
                    break 'outer;
                }
                for b in 0..inst.sets.len() {
                    if in_pack[b] || b == a || inst.sets_conflict(a, b) {
                        continue;
                    }
                    let blockers_b = inst.blockers(b, &item_owner);
                    if blockers_b.iter().all(|&x| x == w)
                        && weights[a] + weights[b] > weights[w] + 1e-12
                    {
                        in_pack[w] = false;
                        for &i in &inst.sets[w] {
                            item_owner[i] = None;
                        }
                        for s in [a, b] {
                            in_pack[s] = true;
                            for &i in &inst.sets[s] {
                                item_owner[i] = Some(s);
                            }
                        }
                        improved = true;
                        break 'outer;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        let mut chosen: Vec<usize> = (0..inst.sets.len()).filter(|&k| in_pack[k]).collect();
        chosen.sort_unstable();
        chosen
    }

    #[test]
    fn restricted_candidate_scan_matches_full_scan() {
        // The conflict-neighbour candidate scan must retrace the full-scan
        // search exactly — same packing, element for element — on both the
        // unweighted and the weighted local search.
        let mut rng = StdRng::seed_from_u64(0xCAFE5E7);
        for case in 0..300 {
            let n_items = rng.gen_range(1..=14);
            let n_sets = rng.gen_range(0..=16);
            let sets: Vec<Vec<usize>> = (0..n_sets)
                .map(|_| {
                    let size = rng.gen_range(1..=3.min(n_items));
                    let mut items: Vec<usize> = (0..n_items).collect();
                    for i in (1..items.len()).rev() {
                        items.swap(i, rng.gen_range(0..=i));
                    }
                    items.truncate(size);
                    items
                })
                .collect();
            let inst = SetPacking::new(n_items, sets).unwrap();
            let start = inst.greedy();
            assert_eq!(
                inst.local_search(start.clone()),
                reference_local_search(&inst, start.clone()),
                "case {case}: unweighted results diverged"
            );
            let weights: Vec<f64> = (0..inst.n_sets())
                .map(|_| rng.gen_range(-1.0..4.0f64))
                .collect();
            assert_eq!(
                inst.local_search_weighted(start.clone(), &weights),
                reference_local_search_weighted(&inst, start, &weights),
                "case {case}: weighted results diverged"
            );
        }
    }

    #[test]
    fn empty_universe_and_no_sets() {
        let inst = SetPacking::new(0, vec![]).unwrap();
        assert!(inst.pack(SetPackingStrategy::LocalSearch).is_empty());
        assert!(inst.pack(SetPackingStrategy::Exact).is_empty());
    }

    #[test]
    fn rejects_out_of_range() {
        let err = SetPacking::new(2, vec![vec![0, 2]]).unwrap_err();
        assert_eq!(err, SetPackingError::ItemOutOfRange { set: 0, item: 2 });
    }

    #[test]
    fn rejects_duplicates() {
        let err = SetPacking::new(2, vec![vec![1, 1]]).unwrap_err();
        assert_eq!(err, SetPackingError::DuplicateItem { set: 0, item: 1 });
    }

    #[test]
    fn rejects_empty_set() {
        let err = SetPacking::new(2, vec![vec![]]).unwrap_err();
        assert_eq!(err, SetPackingError::EmptySet { set: 0 });
    }

    #[test]
    fn is_valid_packing_rejects_overlap() {
        let inst = SetPacking::new(3, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert!(!inst.is_valid_packing(&[0, 1]));
        assert!(inst.is_valid_packing(&[0]));
        assert!(!inst.is_valid_packing(&[9]));
    }

    fn random_instance(rng: &mut StdRng, n_items: usize, n_sets: usize) -> SetPacking {
        let sets: Vec<Vec<usize>> = (0..n_sets)
            .map(|_| {
                let size = rng.gen_range(2..=3.min(n_items));
                let mut items: Vec<usize> = (0..n_items).collect();
                for i in (1..items.len()).rev() {
                    items.swap(i, rng.gen_range(0..=i));
                }
                items.truncate(size);
                items
            })
            .collect();
        SetPacking::new(n_items, sets).unwrap()
    }

    #[test]
    fn weighted_packing_prefers_heavy_sets() {
        // Count-optimal picks the two light pairs; weight-optimal picks
        // the single heavy triple.
        let inst = SetPacking::new(4, vec![vec![0, 1], vec![2, 3], vec![0, 1, 2]]).unwrap();
        let count = inst.pack(SetPackingStrategy::Exact);
        assert_eq!(count.len(), 2);
        let weights = [1.0, 1.0, 5.0];
        let heavy = inst.pack_weighted(SetPackingStrategy::Exact, &weights);
        assert_eq!(heavy, vec![2]);
        assert_eq!(inst.packing_weight(&heavy, &weights), 5.0);
    }

    #[test]
    fn size_weights_maximise_coverage() {
        // Items 0..=4: pairs {0,1} and a triple {1,2,3}. Count ties (one
        // set either way once {0,1} blocks the triple)… make coverage
        // differ: {0,1} vs {1,2,3} overlap at 1, so exactly one can be
        // chosen; coverage picks the triple.
        let inst = SetPacking::new(4, vec![vec![0, 1], vec![1, 2, 3]]).unwrap();
        let sizes: Vec<f64> = (0..inst.n_sets())
            .map(|k| inst.set(k).len() as f64)
            .collect();
        let cover = inst.pack_weighted(SetPackingStrategy::Exact, &sizes);
        assert_eq!(cover, vec![1]);
    }

    #[test]
    fn weighted_strategies_are_valid_and_ordered() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for _ in 0..120 {
            let n_items = rng.gen_range(4..9);
            let n_sets = rng.gen_range(0..10);
            let inst = random_instance(&mut rng, n_items, n_sets);
            let weights: Vec<f64> = (0..inst.n_sets())
                .map(|_| rng.gen_range(0.0..5.0))
                .collect();
            let g = inst.pack_weighted(SetPackingStrategy::Greedy, &weights);
            let ls = inst.pack_weighted(SetPackingStrategy::LocalSearch, &weights);
            let ex = inst.pack_weighted(SetPackingStrategy::Exact, &weights);
            assert!(inst.is_valid_packing(&g));
            assert!(inst.is_valid_packing(&ls));
            assert!(inst.is_valid_packing(&ex));
            let w = |c: &[usize]| inst.packing_weight(c, &weights);
            assert!(w(&g) <= w(&ls) + 1e-9);
            assert!(w(&ls) <= w(&ex) + 1e-9);
        }
    }

    #[test]
    fn unit_weights_recover_unweighted_count() {
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..80 {
            let n_items = rng.gen_range(4..8);
            let n_sets = rng.gen_range(0..9);
            let inst = random_instance(&mut rng, n_items, n_sets);
            let ones = vec![1.0; inst.n_sets()];
            let a = inst.pack(SetPackingStrategy::Exact).len();
            let b = inst.pack_weighted(SetPackingStrategy::Exact, &ones).len();
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per set")]
    fn weighted_rejects_wrong_length() {
        let inst = SetPacking::new(2, vec![vec![0, 1]]).unwrap();
        let _ = inst.pack_weighted(SetPackingStrategy::Greedy, &[]);
    }

    #[test]
    fn local_search_within_paper_ratio_on_random_instances() {
        // With |c_k| ≤ 3 the paper's ratio is (3+2)/3 = 5/3.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let n_items = rng.gen_range(4..10);
            let n_sets = rng.gen_range(1..12);
            let inst = random_instance(&mut rng, n_items, n_sets);
            let exact = inst.pack(SetPackingStrategy::Exact).len() as f64;
            let ls = inst.pack(SetPackingStrategy::LocalSearch).len() as f64;
            assert!(
                exact <= ls * 5.0 / 3.0 + 1e-9,
                "ratio violated: exact {exact}, local search {ls}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// All strategies produce valid, maximal packings, ordered
        /// greedy ≤ local-search ≤ exact in cardinality.
        #[test]
        fn strategies_are_valid_and_ordered(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_items = rng.gen_range(4..9);
            let n_sets = rng.gen_range(0..10);
            let inst = random_instance(&mut rng, n_items, n_sets);
            let g = inst.pack(SetPackingStrategy::Greedy);
            let ls = inst.pack(SetPackingStrategy::LocalSearch);
            let ex = inst.pack(SetPackingStrategy::Exact);
            prop_assert!(inst.is_valid_packing(&g));
            prop_assert!(inst.is_valid_packing(&ls));
            prop_assert!(inst.is_valid_packing(&ex));
            prop_assert!(g.len() <= ls.len());
            prop_assert!(ls.len() <= ex.len());
        }
    }
}
