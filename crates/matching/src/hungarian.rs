//! Minimum-cost bipartite assignment (Hungarian / Jonker–Volgenant style).
//!
//! Engine for the *Pair* baseline: "the distances between passenger
//! requests and taxis are matching costs; it returns a minimum cost
//! matching". Runs in `O(n²·m)` for `n = min(rows, cols)`.

use std::fmt;

/// A dense, row-major cost matrix with finite entries.
///
/// # Examples
///
/// ```
/// use o2o_matching::hungarian::CostMatrix;
///
/// let m = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 0.5]])?;
/// assert_eq!(m.get(1, 1), 0.5);
/// # Ok::<(), o2o_matching::hungarian::CostMatrixError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors from constructing a [`CostMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostMatrixError {
    /// The rows have inconsistent lengths.
    RaggedRows {
        /// Index of the first row with a deviating length.
        row: usize,
    },
    /// An entry is NaN or infinite.
    NonFiniteEntry {
        /// Row of the bad entry.
        row: usize,
        /// Column of the bad entry.
        col: usize,
    },
}

impl fmt::Display for CostMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostMatrixError::RaggedRows { row } => {
                write!(f, "row {row} has a different length from row 0")
            }
            CostMatrixError::NonFiniteEntry { row, col } => {
                write!(f, "entry ({row}, {col}) is NaN or infinite")
            }
        }
    }
}

impl std::error::Error for CostMatrixError {}

impl CostMatrix {
    /// Builds a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`CostMatrixError::RaggedRows`] for inconsistent row lengths
    /// and [`CostMatrixError::NonFiniteEntry`] for NaN/infinite costs.
    /// Model a forbidden pair with a large finite cost instead of
    /// infinity.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, CostMatrixError> {
        let n = rows.len();
        let m = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * m);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != m {
                return Err(CostMatrixError::RaggedRows { row: i });
            }
            for (j, &c) in row.iter().enumerate() {
                if !c.is_finite() {
                    return Err(CostMatrixError::NonFiniteEntry { row: i, col: j });
                }
                data.push(c);
            }
        }
        Ok(CostMatrix {
            rows: n,
            cols: m,
            data,
        })
    }

    /// Builds an `rows × cols` matrix from a cost function.
    ///
    /// # Panics
    ///
    /// Panics if the function returns a non-finite cost.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let c = f(i, j);
                assert!(c.is_finite(), "cost ({i}, {j}) is not finite: {c}");
                data.push(c);
            }
        }
        CostMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// The transposed matrix.
    #[must_use]
    pub fn transposed(&self) -> CostMatrix {
        CostMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }
}

/// Result of a minimum-cost assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `row_to_col[i]` = column assigned to row `i` (`None` only when the
    /// matrix has more rows than columns).
    pub row_to_col: Vec<Option<usize>>,
    /// Sum of the matched costs.
    pub total_cost: f64,
}

impl Assignment {
    /// Matched `(row, col)` pairs in row order.
    #[must_use]
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.row_to_col
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.map(|c| (i, c)))
            .collect()
    }
}

/// Minimum-cost assignment matching `min(rows, cols)` pairs.
///
/// When `rows ≤ cols` every row is matched; otherwise every column is. The
/// solution minimises the total matched cost; runs in
/// `O(min(r,c)² · max(r,c))`.
///
/// # Examples
///
/// ```
/// use o2o_matching::hungarian::CostMatrix;
/// use o2o_matching::min_cost_assignment;
///
/// let costs = CostMatrix::from_rows(vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ])?;
/// let a = min_cost_assignment(&costs);
/// assert_eq!(a.total_cost, 5.0);
/// # Ok::<(), o2o_matching::hungarian::CostMatrixError>(())
/// ```
#[must_use]
pub fn min_cost_assignment(costs: &CostMatrix) -> Assignment {
    if costs.rows == 0 || costs.cols == 0 {
        return Assignment {
            row_to_col: vec![None; costs.rows],
            total_cost: 0.0,
        };
    }
    if costs.rows > costs.cols {
        // Solve the transpose and invert the mapping.
        let t = min_cost_assignment(&costs.transposed());
        let mut row_to_col = vec![None; costs.rows];
        for (col, row) in t.row_to_col.iter().enumerate() {
            if let Some(row) = row {
                row_to_col[*row] = Some(col);
            }
        }
        return Assignment {
            row_to_col,
            total_cost: t.total_cost,
        };
    }
    let n = costs.rows; // n <= m
    let m = costs.cols;
    // Classic potentials formulation, 1-based on both axes.
    let a = |i: usize, j: usize| costs.get(i - 1, j - 1);
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = a(i0, j) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Walk the augmenting path back.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut row_to_col = vec![None; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = Some(j - 1);
            total += a(p[j], j);
        }
    }
    Assignment {
        row_to_col,
        total_cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn brute_force_min(costs: &CostMatrix) -> f64 {
        // Try all injective row→col maps (rows ≤ cols assumed by caller).
        fn rec(costs: &CostMatrix, row: usize, used: &mut Vec<bool>) -> f64 {
            if row == costs.rows() {
                return 0.0;
            }
            let mut best = f64::INFINITY;
            for c in 0..costs.cols() {
                if !used[c] {
                    used[c] = true;
                    let v = costs.get(row, c) + rec(costs, row + 1, used);
                    used[c] = false;
                    best = best.min(v);
                }
            }
            best
        }
        rec(costs, 0, &mut vec![false; costs.cols()])
    }

    #[test]
    fn small_square_case() {
        let costs = CostMatrix::from_rows(vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ])
        .unwrap();
        let a = min_cost_assignment(&costs);
        assert_eq!(a.total_cost, 5.0);
        assert_eq!(a.pairs().len(), 3);
    }

    #[test]
    fn rectangular_wide() {
        let costs =
            CostMatrix::from_rows(vec![vec![10.0, 1.0, 10.0], vec![2.0, 10.0, 10.0]]).unwrap();
        let a = min_cost_assignment(&costs);
        assert_eq!(a.total_cost, 3.0);
        assert_eq!(a.row_to_col, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_tall_matches_columns() {
        let costs = CostMatrix::from_rows(vec![vec![5.0], vec![1.0], vec![3.0]]).unwrap();
        let a = min_cost_assignment(&costs);
        assert_eq!(a.total_cost, 1.0);
        assert_eq!(a.row_to_col, vec![None, Some(0), None]);
    }

    #[test]
    fn empty_matrices() {
        let a = min_cost_assignment(&CostMatrix::from_rows(vec![]).unwrap());
        assert_eq!(a.total_cost, 0.0);
        assert!(a.row_to_col.is_empty());
        let b = min_cost_assignment(&CostMatrix::from_fn(2, 0, |_, _| 0.0));
        assert_eq!(b.row_to_col, vec![None, None]);
    }

    #[test]
    fn negative_costs_are_fine() {
        let costs = CostMatrix::from_rows(vec![vec![-5.0, 0.0], vec![0.0, -5.0]]).unwrap();
        let a = min_cost_assignment(&costs);
        assert_eq!(a.total_cost, -10.0);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = CostMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert_eq!(err, CostMatrixError::RaggedRows { row: 1 });
    }

    #[test]
    fn non_finite_rejected() {
        let err = CostMatrix::from_rows(vec![vec![f64::INFINITY]]).unwrap_err();
        assert_eq!(err, CostMatrixError::NonFiniteEntry { row: 0, col: 0 });
    }

    #[test]
    fn transpose_round_trip() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transposed(), m);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Hungarian result equals brute force on small matrices.
        #[test]
        fn matches_brute_force(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..100.0f64, 4), 1..5),
        ) {
            let costs = CostMatrix::from_rows(rows).unwrap();
            let fast = min_cost_assignment(&costs);
            let brute = brute_force_min(&costs);
            prop_assert!((fast.total_cost - brute).abs() < 1e-6,
                "fast {} vs brute {}", fast.total_cost, brute);
            // Assignment is injective and complete on rows.
            let pairs = fast.pairs();
            prop_assert_eq!(pairs.len(), costs.rows());
            let mut cols: Vec<usize> = pairs.iter().map(|&(_, c)| c).collect();
            cols.sort_unstable();
            cols.dedup();
            prop_assert_eq!(cols.len(), pairs.len());
        }

        /// Tall matrices agree with solving the transpose.
        #[test]
        fn tall_equals_transposed(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..100.0f64, 2), 3..6),
        ) {
            let costs = CostMatrix::from_rows(rows).unwrap();
            let tall = min_cost_assignment(&costs);
            let wide = min_cost_assignment(&costs.transposed());
            prop_assert!((tall.total_cost - wide.total_cost).abs() < 1e-6);
        }
    }
}
