//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace-local
//! package implements the slice of proptest this repository uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * range, tuple and [`collection::vec`] strategies plus [`any`],
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Cases are generated from a deterministic per-test seed, overridable
//! with `PROPTEST_SEED`, and the case count with `PROPTEST_CASES`. There
//! is **no shrinking**: a failing case reports its case index and master
//! seed so it can be replayed exactly with
//! `PROPTEST_SEED=<seed> cargo test <name>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (upstream defaults to 256; the shim trades a thinner
    /// sweep for test-suite latency), overridable via `PROPTEST_CASES`.
    fn default() -> Self {
        ProptestConfig {
            cases: env_u64("PROPTEST_CASES").map_or(64, |v| v as u32),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// The master seed for this process: `PROPTEST_SEED` or a fixed default.
#[must_use]
pub fn master_seed() -> u64 {
    env_u64("PROPTEST_SEED").unwrap_or(0x0_5EED_CAFE)
}

/// The generator for one case: derived from the master seed and case
/// index, so any case replays independently.
#[must_use]
pub fn case_rng(master: u64, case: u32) -> TestRng {
    TestRng::seed_from_u64(master ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// A value generator (subset of proptest's `Strategy`: generation only,
/// no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! numeric_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a default full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T` (subset: the workspace only uses
/// integer types here).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length bounds for [`vec`]: a fixed size or a (half-open or
    /// inclusive) range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
///
/// Unlike upstream proptest there is no shrinking; failures print the
/// case index and master seed for exact replay.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __master = $crate::master_seed();
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::case_rng(__master, __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest case {}/{} failed (master seed {}); replay with \
                             PROPTEST_SEED={} cargo test {}",
                            __case + 1,
                            __cfg.cases,
                            __master,
                            __master,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let master = super::master_seed();
        let mut rng = super::case_rng(master, 0);
        let v = (0.5..6.0f64).generate(&mut rng);
        assert!((0.5..6.0).contains(&v));
        let (x, y) = (-10.0..10.0f64, 0usize..6).generate(&mut rng);
        assert!((-10.0..10.0).contains(&x) && y < 6);
        let xs = collection::vec((0usize..6, 0usize..6), 0..18).generate(&mut rng);
        assert!(xs.len() < 18);
        let fixed = collection::vec(0.0..1.0f64, 4).generate(&mut rng);
        assert_eq!(fixed.len(), 4);
        let nested = collection::vec(collection::vec(0.0..100.0f64, 4), 1..5).generate(&mut rng);
        assert!((1..5).contains(&nested.len()));
        assert!(nested.iter().all(|row| row.len() == 4));
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let a: u64 = any::<u64>().generate(&mut super::case_rng(1, 3));
        let b: u64 = any::<u64>().generate(&mut super::case_rng(1, 3));
        let c: u64 = any::<u64>().generate(&mut super::case_rng(1, 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: runs, sees bound values, supports assume.
        #[test]
        fn macro_end_to_end(seed in any::<u64>(), n in 1usize..5, x in -1.0..1.0f64) {
            prop_assume!(n != 999);
            prop_assert!((1..5).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
            prop_assert_eq!(seed, seed);
            prop_assert_ne!(n, 999);
        }
    }
}
