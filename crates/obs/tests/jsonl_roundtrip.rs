//! Round-trip tests for the JSONL sink: every emitted line must parse as
//! a JSON object with the documented fields, string escaping must
//! round-trip, and the span tree must be reconstructible from the event
//! stream alone.

use o2o_obs::{JsonlSink, Recorder};
use std::collections::BTreeMap;

/// A minimal JSON value — just enough to round-trip the sink's output.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Num(f64),
    Str(String),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }

    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("expected object, got {other:?}"),
        }
    }

    fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(m) => m.keys().map(String::as_str).collect(),
            other => panic!("expected object, got {other:?}"),
        }
    }
}

/// Parses one JSONL line: a flat object of null / number / string values
/// (the only shapes the sink emits).
fn parse_line(line: &str) -> Json {
    let mut chars = line.char_indices().peekable();
    let mut obj = BTreeMap::new();
    assert_eq!(chars.next().map(|(_, c)| c), Some('{'), "line: {line}");
    loop {
        match chars.peek().copied() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '"')) => {
                let key = parse_string(line, &mut chars);
                assert_eq!(chars.next().map(|(_, c)| c), Some(':'), "line: {line}");
                let value = match chars.peek().copied() {
                    Some((_, '"')) => Json::Str(parse_string(line, &mut chars)),
                    Some((i, 'n')) => {
                        assert_eq!(&line[i..i + 4], "null");
                        for _ in 0..4 {
                            chars.next();
                        }
                        Json::Null
                    }
                    Some((start, _)) => {
                        let mut end = line.len();
                        while let Some(&(i, c)) = chars.peek() {
                            if c == ',' || c == '}' {
                                end = i;
                                break;
                            }
                            chars.next();
                        }
                        Json::Num(line[start..end].parse().expect("number"))
                    }
                    None => panic!("truncated line: {line}"),
                };
                obj.insert(key, value);
            }
            other => panic!("unexpected {other:?} in line: {line}"),
        }
    }
    assert!(chars.next().is_none(), "trailing garbage in line: {line}");
    Json::Obj(obj)
}

fn parse_string(line: &str, chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) -> String {
    assert_eq!(chars.next().map(|(_, c)| c), Some('"'));
    let mut out = String::new();
    loop {
        match chars.next().map(|(_, c)| c) {
            Some('"') => return out,
            Some('\\') => match chars.next().map(|(_, c)| c) {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).map(|_| chars.next().unwrap().1).collect();
                    let code = u32::from_str_radix(&hex, 16).expect("hex escape");
                    out.push(char::from_u32(code).expect("BMP scalar"));
                }
                other => panic!("bad escape {other:?} in line: {line}"),
            },
            Some(c) => out.push(c),
            None => panic!("unterminated string in line: {line}"),
        }
    }
}

/// Drives a recorder through a nested-span workload and returns the
/// parsed JSONL lines.
fn recorded_lines() -> Vec<Json> {
    let (sink, buf) = JsonlSink::shared();
    let rec = Recorder::with_sink(Box::new(sink));
    rec.begin_frame(0);
    {
        let _frame = rec.span("policy_dispatch");
        {
            let _prefs = rec.span("preference_build");
            rec.add("sparse.rows", 12);
        }
        {
            let _da = rec.span("deferred_acceptance");
            rec.add_many(&[("match.proposals", 9), ("match.rejections", 4)]);
        }
    }
    rec.gauge("sim.queue_len", 7.0);
    rec.observe("frame.dispatch_ms", 0.25);
    rec.end_frame().unwrap();
    rec.flush();
    buf.contents().lines().map(parse_line).collect()
}

#[test]
fn every_line_parses_with_documented_fields() {
    let lines = recorded_lines();
    assert_eq!(lines.len(), 14);
    assert_eq!(
        lines[0].get("type").str(),
        "meta",
        "schema header stamps the stream first"
    );
    assert_eq!(
        lines[0].get("schema_version").num() as u32,
        o2o_obs::SCHEMA_VERSION
    );
    for line in &lines {
        let ty = line.get("type").str().to_string();
        let expected: &[&str] = match ty.as_str() {
            "meta" => &["schema_version", "type"],
            "frame_start" => &["frame", "type"],
            "frame_end" => &["frame", "type", "wall_ms"],
            "span_start" => &["frame", "id", "name", "parent", "type"],
            "span_end" => &["frame", "id", "name", "self_ms", "total_ms", "type"],
            "counter" => &["delta", "frame", "name", "total", "type"],
            "gauge" => &["frame", "name", "type", "value"],
            "histogram" => &["bucket", "frame", "name", "type", "value"],
            other => panic!("unknown event type {other}"),
        };
        assert_eq!(line.keys(), expected, "fields of {ty}");
    }
}

#[test]
fn span_nesting_reconstructs_from_the_event_stream() {
    let lines = recorded_lines();
    // Rebuild the span tree purely from span_start parent pointers.
    let mut parent_of: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    let mut name_of: BTreeMap<u64, String> = BTreeMap::new();
    let mut stack: Vec<u64> = Vec::new();
    let mut max_depth = 0usize;
    for line in &lines {
        match line.get("type").str() {
            "span_start" => {
                let id = line.get("id").num() as u64;
                let parent = match line.get("parent") {
                    Json::Null => None,
                    v => Some(v.num() as u64),
                };
                // The parent recorded in the event must equal the span
                // currently open according to the stream ordering.
                assert_eq!(parent, stack.last().copied());
                parent_of.insert(id, parent);
                name_of.insert(id, line.get("name").str().to_string());
                stack.push(id);
                max_depth = max_depth.max(stack.len());
            }
            "span_end" => {
                let id = line.get("id").num() as u64;
                assert_eq!(stack.pop(), Some(id), "spans close innermost-first");
                assert_eq!(line.get("name").str(), name_of[&id]);
                assert!(line.get("self_ms").num() <= line.get("total_ms").num() + 1e-9);
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "every span closed");
    assert_eq!(max_depth, 2);
    // preference_build and deferred_acceptance are siblings under
    // policy_dispatch.
    let root = parent_of
        .iter()
        .find(|(id, _)| name_of[*id] == "policy_dispatch")
        .map(|(id, _)| *id)
        .expect("root span present");
    assert_eq!(parent_of[&root], None);
    for stage in ["preference_build", "deferred_acceptance"] {
        let id = name_of
            .iter()
            .find(|(_, n)| n.as_str() == stage)
            .map(|(id, _)| *id)
            .unwrap();
        assert_eq!(parent_of[&id], Some(root), "{stage} nests under root");
    }
}

#[test]
fn counters_and_frame_attribution_round_trip() {
    let lines = recorded_lines();
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    for line in &lines {
        if line.get("type").str() == "counter" {
            assert_eq!(line.get("frame").num() as u64, 0);
            let name = line.get("name").str().to_string();
            let total = line.get("total").num() as u64;
            let delta = line.get("delta").num() as u64;
            *totals.entry(name.clone()).or_insert(0) += delta;
            assert_eq!(totals[&name], total, "running total of {name}");
        }
    }
    assert_eq!(totals["match.proposals"], 9);
    assert_eq!(totals["match.rejections"], 4);
    assert_eq!(totals["sparse.rows"], 12);
}

#[test]
fn escaping_round_trips_through_parse() {
    // Span names are &'static str; exotic content can only reach string
    // fields through names, so exercise the writer directly with one.
    let (sink, buf) = JsonlSink::shared();
    let rec = Recorder::with_sink(Box::new(sink));
    rec.add("weird \"name\"\twith\\escapes", 1);
    rec.flush();
    let text = buf.contents();
    // Line 0 is the schema header; the counter follows it.
    let line = parse_line(text.lines().nth(1).unwrap());
    assert_eq!(line.get("name").str(), "weird \"name\"\twith\\escapes");
}

#[test]
fn stage_self_times_sum_to_at_most_frame_wall_clock() {
    let lines = recorded_lines();
    let mut self_sum = 0.0;
    let mut wall = None;
    for line in &lines {
        match line.get("type").str() {
            "span_end" => self_sum += line.get("self_ms").num(),
            "frame_end" => wall = Some(line.get("wall_ms").num()),
            _ => {}
        }
    }
    let wall = wall.expect("frame_end present");
    assert!(
        self_sum <= wall * 1.01 + 0.1,
        "self-time sum {self_sum} exceeds frame wall {wall}"
    );
}
