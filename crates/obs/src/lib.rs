//! Structured observability for the dispatch pipeline.
//!
//! A self-contained (no external dependencies) tracing/metrics layer in
//! the spirit of `tracing` + `metrics-rs`, sized for this workspace:
//!
//! * **hierarchical spans** with monotonic wall-clock timing and
//!   *self-time* accounting (a span's total minus the totals of its
//!   direct children), so per-frame stage breakdowns sum to at most the
//!   frame's wall-clock;
//! * **typed instruments** — monotonic counters, last-value gauges and
//!   fixed-bucket histograms whose bucket edges are compile-time
//!   constants, keeping summaries deterministic across runs;
//! * **pluggable sinks** ([`EventSink`]) receiving every [`Event`]:
//!   [`MemorySink`] for tests, [`JsonlSink`] for a machine-readable
//!   event log, [`SummarySink`] for an end-of-run aggregate table;
//! * **frames** — the simulator brackets each dispatch window with
//!   [`Recorder::begin_frame`]/[`Recorder::end_frame`]; the latter
//!   returns the frame's [`FrameStats`] (per-stage self-times and
//!   per-counter deltas), which accumulate into a [`StageBreakdown`].
//!
//! # Zero-cost when disabled
//!
//! Every handle is a [`Recorder`]: a cloneable wrapper around
//! `Option<Arc<…>>`. [`Recorder::disabled`] is a `const fn` producing
//! the `None` variant; every recording method first checks that option
//! and returns immediately, so a disabled recorder costs one branch per
//! call site and allocates nothing. The pipeline's contract — enforced
//! by property tests and a CI smoke run — is that enabling a recorder
//! never changes dispatch *results*, only produces telemetry.
//!
//! # Reaching code that has no handle
//!
//! Deep pipeline stages (deferred acceptance, preference construction)
//! would need a `Recorder` argument through many signatures. Instead the
//! driving thread installs its recorder as the thread-local *current*
//! recorder with [`scope`], and leaf code records through the free
//! functions ([`span`], [`add`], [`add_many`], …) which consult the
//! thread-local. Worker threads spawned by `o2o-par` do **not** inherit
//! the scope: instrumentation belongs on the driving thread, outside
//! parallel closures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
mod sink;
mod slo;
mod stats;

pub use fleet::{FleetMeta, FleetOptions, FleetSummary, ShardSummary, ShardTelemetry};
pub use sink::{EventSink, JsonlSink, MemorySink, SharedBuffer, SummarySink};
pub use slo::{FrameObservation, SloBound, SloEvent, SloMetric, SloMonitor, SloSpec};
pub use stats::{FrameStats, Histogram, HistogramSnapshot, RollingWindow, StageBreakdown, Summary};

/// Version stamp carried by the first record (`"type":"meta"`) of every
/// [`JsonlSink`] stream. Readers ([`fleet::parse_shard`], the CI
/// re-parse step) reject streams whose version they do not understand
/// instead of guessing at field meanings.
///
/// History: v1 — the headerless PR 5 format; v2 — adds the meta header
/// itself, the optional [`FleetMeta`] identity fields and the `slo`
/// record type.
pub const SCHEMA_VERSION: u32 = 2;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// One observability event, as delivered to every [`EventSink`].
///
/// Instrument names are `&'static str` by design: they form a closed,
/// compile-time vocabulary (documented in `DESIGN.md`), which keeps
/// recording allocation-free and event streams deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A simulator frame's dispatch window opened.
    FrameStart {
        /// Frame index (the simulator's 0-based frame counter).
        frame: u64,
    },
    /// The frame's dispatch window closed.
    FrameEnd {
        /// Frame index.
        frame: u64,
        /// Wall-clock between `begin_frame` and `end_frame`.
        wall_ms: f64,
    },
    /// A span opened.
    SpanStart {
        /// Unique (per recorder) span id.
        id: u64,
        /// Enclosing span's id, if any.
        parent: Option<u64>,
        /// Stage name.
        name: &'static str,
        /// Frame open at the time, if any.
        frame: Option<u64>,
    },
    /// A span closed.
    SpanEnd {
        /// Span id (matches the corresponding [`Event::SpanStart`]).
        id: u64,
        /// Stage name.
        name: &'static str,
        /// Wall-clock from open to close.
        total_ms: f64,
        /// `total_ms` minus the total time of direct child spans.
        self_ms: f64,
        /// Frame open at the time, if any.
        frame: Option<u64>,
    },
    /// A monotonic counter was incremented.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment applied.
        delta: u64,
        /// Cumulative value after the increment.
        total: u64,
        /// Frame open at the time, if any.
        frame: Option<u64>,
    },
    /// A gauge was set.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// New value.
        value: f64,
        /// Frame open at the time, if any.
        frame: Option<u64>,
    },
    /// A histogram observed a sample.
    Histogram {
        /// Histogram name.
        name: &'static str,
        /// Observed sample.
        value: f64,
        /// Index of the bucket the sample fell into (an index equal to
        /// the number of edges is the overflow bucket).
        bucket: usize,
        /// Frame open at the time, if any.
        frame: Option<u64>,
    },
    /// An SLO threshold transition ([`SloEvent::Breach`] /
    /// [`SloEvent::Recover`]), recorded via [`Recorder::slo_event`].
    /// Rare by construction — one event per crossing, not per frame.
    Slo(SloEvent),
}

impl Event {
    /// The frame the event was recorded in, if any.
    #[must_use]
    pub fn frame(&self) -> Option<u64> {
        match self {
            Event::FrameStart { frame } | Event::FrameEnd { frame, .. } => Some(*frame),
            Event::SpanStart { frame, .. }
            | Event::SpanEnd { frame, .. }
            | Event::Counter { frame, .. }
            | Event::Gauge { frame, .. }
            | Event::Histogram { frame, .. } => *frame,
            Event::Slo(ev) => Some(ev.frame()),
        }
    }
}

/// A span still on the recorder's stack.
struct OpenSpan {
    id: u64,
    name: &'static str,
    start: Instant,
    /// Total wall-clock of already-closed direct children.
    child_ms: f64,
}

/// A frame window opened by [`Recorder::begin_frame`].
struct OpenFrame {
    frame: u64,
    start: Instant,
    /// Self-time accumulated per stage name while this frame was open.
    stage_self_ms: BTreeMap<&'static str, f64>,
    /// Counter increments while this frame was open.
    counter_deltas: BTreeMap<&'static str, u64>,
}

/// Shared state behind an enabled recorder.
struct Inner {
    sinks: Vec<Box<dyn EventSink + Send>>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: Vec<OpenSpan>,
    next_span_id: u64,
    frame: Option<OpenFrame>,
}

impl Inner {
    fn new(sinks: Vec<Box<dyn EventSink + Send>>) -> Self {
        Inner {
            sinks,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: Vec::new(),
            next_span_id: 0,
            frame: None,
        }
    }

    fn emit(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.record(event);
        }
    }

    fn current_frame(&self) -> Option<u64> {
        self.frame.as_ref().map(|f| f.frame)
    }
}

/// Handle to a recording pipeline — or to nothing at all.
///
/// Cloning is cheap (an `Arc` clone) and every clone feeds the same
/// state, so one handle can be held by the simulator while another is
/// installed as the thread-local current recorder. The disabled handle
/// ([`Recorder::disabled`]) records nothing and costs one branch per
/// call.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

/// The canonical disabled recorder behind [`Recorder::disabled_ref`].
static DISABLED: Recorder = Recorder::disabled();

impl Recorder {
    /// A recorder that records nothing. `const`, allocation-free.
    #[must_use]
    pub const fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A `'static` reference to the disabled recorder, for contexts that
    /// hold `&Recorder` and need a default.
    #[must_use]
    pub fn disabled_ref() -> &'static Recorder {
        &DISABLED
    }

    /// An enabled recorder with no sinks: counters, gauges, histograms,
    /// span self-times and frame stats are collected in memory (readable
    /// through [`Recorder::summary`] / [`Recorder::end_frame`]) but no
    /// event stream is written anywhere.
    #[must_use]
    pub fn new() -> Self {
        Self::with_sinks(Vec::new())
    }

    /// An enabled recorder delivering every [`Event`] to `sink`.
    #[must_use]
    pub fn with_sink(sink: Box<dyn EventSink + Send>) -> Self {
        Self::with_sinks(vec![sink])
    }

    /// An enabled recorder delivering every [`Event`] to all `sinks`,
    /// in order.
    #[must_use]
    pub fn with_sinks(sinks: Vec<Box<dyn EventSink + Send>>) -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(Inner::new(sinks)))),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(inner: &Arc<Mutex<Inner>>) -> MutexGuard<'_, Inner> {
        // A sink that panicked mid-event poisons the mutex; telemetry
        // should degrade, not cascade the panic into dispatch.
        inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Opens frame `frame`'s window. Stage self-times and counter deltas
    /// recorded until the matching [`Recorder::end_frame`] are
    /// attributed to it. Frames must not nest; opening a new frame while
    /// one is open silently replaces it.
    pub fn begin_frame(&self, frame: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        g.frame = Some(OpenFrame {
            frame,
            start: Instant::now(),
            stage_self_ms: BTreeMap::new(),
            counter_deltas: BTreeMap::new(),
        });
        let ev = Event::FrameStart { frame };
        g.emit(&ev);
    }

    /// Closes the open frame window and returns its [`FrameStats`]
    /// (stage self-times and counter deltas, both name-sorted). Returns
    /// `None` when disabled or when no frame is open.
    pub fn end_frame(&self) -> Option<FrameStats> {
        let inner = self.inner.as_ref()?;
        let mut g = Self::lock(inner);
        let open = g.frame.take()?;
        let wall_ms = ms_since(open.start);
        let stats = FrameStats {
            frame: open.frame,
            wall_ms,
            stages: open
                .stage_self_ms
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            counters: open
                .counter_deltas
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        let ev = Event::FrameEnd {
            frame: stats.frame,
            wall_ms,
        };
        g.emit(&ev);
        Some(stats)
    }

    /// Opens a span named `name`, closed when the returned guard drops.
    /// Spans nest: time spent in an inner span is excluded from the
    /// outer span's self-time.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard {
                rec: Recorder::disabled(),
                id: 0,
            };
        };
        let mut g = Self::lock(inner);
        let id = g.next_span_id;
        g.next_span_id += 1;
        let parent = g.spans.last().map(|s| s.id);
        let frame = g.current_frame();
        g.spans.push(OpenSpan {
            id,
            name,
            start: Instant::now(),
            child_ms: 0.0,
        });
        let ev = Event::SpanStart {
            id,
            parent,
            name,
            frame,
        };
        g.emit(&ev);
        SpanGuard {
            rec: self.clone(),
            id,
        }
    }

    fn end_span(&self, id: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        // Guards drop in reverse open order on one thread, so the ended
        // span is the top of the stack; tolerate (skip) anything else.
        if g.spans.last().map(|s| s.id) != Some(id) {
            return;
        }
        let span = g.spans.pop().expect("span stack top checked above");
        let total_ms = ms_since(span.start);
        let self_ms = (total_ms - span.child_ms).max(0.0);
        if let Some(parent) = g.spans.last_mut() {
            parent.child_ms += total_ms;
        }
        if let Some(frame) = g.frame.as_mut() {
            *frame.stage_self_ms.entry(span.name).or_insert(0.0) += self_ms;
        }
        let frame = g.current_frame();
        let ev = Event::SpanEnd {
            id,
            name: span.name,
            total_ms,
            self_ms,
            frame,
        };
        g.emit(&ev);
    }

    /// Increments counter `name` by `delta`.
    ///
    /// A zero `delta` is a complete no-op: it neither creates the
    /// counter nor emits an event. Hot loops can therefore flush
    /// batched local tallies unconditionally without flooding sinks
    /// with empty increments.
    pub fn add(&self, name: &'static str, delta: u64) {
        if delta == 0 {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        let total = {
            let c = g.counters.entry(name).or_insert(0);
            *c += delta;
            *c
        };
        if let Some(frame) = g.frame.as_mut() {
            *frame.counter_deltas.entry(name).or_insert(0) += delta;
        }
        let frame = g.current_frame();
        let ev = Event::Counter {
            name,
            delta,
            total,
            frame,
        };
        g.emit(&ev);
    }

    /// Increments several counters under one lock — the flush half of
    /// the batch-in-locals pattern hot loops use. As with
    /// [`Recorder::add`], zero deltas are skipped entirely.
    pub fn add_many(&self, pairs: &[(&'static str, u64)]) {
        if pairs.iter().all(|&(_, delta)| delta == 0) {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        for &(name, delta) in pairs {
            if delta == 0 {
                continue;
            }
            let total = {
                let c = g.counters.entry(name).or_insert(0);
                *c += delta;
                *c
            };
            if let Some(frame) = g.frame.as_mut() {
                *frame.counter_deltas.entry(name).or_insert(0) += delta;
            }
            let frame = g.current_frame();
            let ev = Event::Counter {
                name,
                delta,
                total,
                frame,
            };
            g.emit(&ev);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        g.gauges.insert(name, value);
        let frame = g.current_frame();
        let ev = Event::Gauge { name, value, frame };
        g.emit(&ev);
    }

    /// Records `value` into histogram `name` (fixed default bucket
    /// edges, [`Histogram::DEFAULT_EDGES`]).
    pub fn observe(&self, name: &'static str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        let bucket = g
            .histograms
            .entry(name)
            .or_insert_with(Histogram::default)
            .observe(value);
        let frame = g.current_frame();
        let ev = Event::Histogram {
            name,
            value,
            bucket,
            frame,
        };
        g.emit(&ev);
    }

    /// Records an SLO transition into the event stream and bumps the
    /// `slo.breaches` / `slo.recoveries` counter, so breach counts show
    /// up in frame deltas and stage breakdowns alongside the typed
    /// [`Event::Slo`] record.
    pub fn slo_event(&self, event: SloEvent) {
        let Some(inner) = &self.inner else { return };
        let name: &'static str = if event.is_breach() {
            "slo.breaches"
        } else {
            "slo.recoveries"
        };
        let mut g = Self::lock(inner);
        let total = {
            let c = g.counters.entry(name).or_insert(0);
            *c += 1;
            *c
        };
        if let Some(frame) = g.frame.as_mut() {
            *frame.counter_deltas.entry(name).or_insert(0) += 1;
        }
        let frame = g.current_frame();
        let counter_ev = Event::Counter {
            name,
            delta: 1,
            total,
            frame,
        };
        g.emit(&counter_ev);
        let ev = Event::Slo(event);
        g.emit(&ev);
    }

    /// Cumulative value of counter `name` (0 when disabled or never
    /// incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let g = Self::lock(inner);
        g.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters with their cumulative values, name-sorted.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let g = Self::lock(inner);
        g.counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// End-of-run aggregate snapshot: counters, gauges and histogram
    /// states, all name-sorted.
    #[must_use]
    pub fn summary(&self) -> Summary {
        let Some(inner) = &self.inner else {
            return Summary::default();
        };
        let g = Self::lock(inner);
        Summary {
            counters: g
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }

    /// Flushes every sink (e.g. buffered JSONL writers).
    pub fn flush(&self) {
        let Some(inner) = &self.inner else { return };
        let mut g = Self::lock(inner);
        for sink in &mut g.sinks {
            sink.flush();
        }
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII guard closing a span when dropped. See [`Recorder::span`].
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    rec: Recorder,
    id: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.rec.end_span(self.id);
    }
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard").field("id", &self.id).finish()
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

thread_local! {
    static CURRENT: RefCell<Recorder> = const { RefCell::new(Recorder::disabled()) };
}

/// Installs `rec` as this thread's current recorder until the returned
/// guard drops (the previous current recorder is then restored). The
/// free functions ([`span`], [`add`], …) record through the current
/// recorder; without a scope they are no-ops.
#[must_use = "the scope lasts until the guard is dropped"]
pub fn scope(rec: &Recorder) -> ScopeGuard {
    let previous = CURRENT.with(|c| c.replace(rec.clone()));
    ScopeGuard { previous }
}

/// Guard restoring the previously current recorder. See [`scope`].
#[derive(Debug)]
pub struct ScopeGuard {
    previous: Recorder,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(std::mem::replace(&mut self.previous, Recorder::disabled())));
    }
}

/// A clone of this thread's current recorder (disabled if no [`scope`]
/// is active).
#[must_use]
pub fn current() -> Recorder {
    CURRENT.with(|c| c.borrow().clone())
}

/// Opens a span on the current recorder. See [`Recorder::span`].
pub fn span(name: &'static str) -> SpanGuard {
    CURRENT.with(|c| c.borrow().span(name))
}

/// Increments a counter on the current recorder. See [`Recorder::add`].
pub fn add(name: &'static str, delta: u64) {
    CURRENT.with(|c| c.borrow().add(name, delta));
}

/// Increments several counters on the current recorder under one lock.
/// See [`Recorder::add_many`].
pub fn add_many(pairs: &[(&'static str, u64)]) {
    CURRENT.with(|c| c.borrow().add_many(pairs));
}

/// Sets a gauge on the current recorder. See [`Recorder::gauge`].
pub fn gauge(name: &'static str, value: f64) {
    CURRENT.with(|c| c.borrow().gauge(name, value));
}

/// Records a histogram sample on the current recorder. See
/// [`Recorder::observe`].
pub fn observe(name: &'static str, value: f64) {
    CURRENT.with(|c| c.borrow().observe(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.begin_frame(0);
        let _s = rec.span("stage");
        rec.add("c", 3);
        rec.gauge("g", 1.0);
        rec.observe("h", 2.0);
        assert_eq!(rec.end_frame(), None);
        assert_eq!(rec.counter("c"), 0);
        assert!(rec.counters().is_empty());
        assert_eq!(rec.summary(), Summary::default());
    }

    #[test]
    fn counters_accumulate_and_split_per_frame() {
        let rec = Recorder::new();
        rec.begin_frame(0);
        rec.add("c", 2);
        rec.add_many(&[("c", 1), ("d", 5)]);
        let f0 = rec.end_frame().unwrap();
        rec.begin_frame(1);
        rec.add("c", 10);
        let f1 = rec.end_frame().unwrap();
        assert_eq!(
            f0.counters,
            vec![("c".to_string(), 3), ("d".to_string(), 5)]
        );
        assert_eq!(f1.counters, vec![("c".to_string(), 10)]);
        assert_eq!(rec.counter("c"), 13);
        assert_eq!(rec.counter("d"), 5);
        assert_eq!(rec.counter("missing"), 0);
    }

    #[test]
    fn zero_deltas_are_complete_noops() {
        let (sink, handle) = MemorySink::new();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.add("c", 0);
        rec.add_many(&[("c", 0), ("d", 0)]);
        assert!(handle.is_empty(), "zero deltas emit no events");
        assert!(rec.counters().is_empty(), "zero deltas create no counters");
        rec.add_many(&[("c", 0), ("d", 2)]);
        assert_eq!(handle.len(), 1, "only the non-zero delta is emitted");
        assert_eq!(rec.counters(), vec![("d".to_string(), 2)]);
    }

    #[test]
    fn span_self_time_excludes_children_and_sums_within_frame_wall() {
        let rec = Recorder::new();
        rec.begin_frame(7);
        {
            let _outer = rec.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = rec.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let fs = rec.end_frame().unwrap();
        assert_eq!(fs.frame, 7);
        let stages: std::collections::BTreeMap<_, _> = fs.stages.iter().cloned().collect();
        assert!(stages["inner"] > 0.0);
        assert!(stages["outer"] >= 0.0);
        let total: f64 = fs.stages.iter().map(|(_, ms)| ms).sum();
        assert!(
            total <= fs.wall_ms * 1.01 + 0.1,
            "stage self-times {total} must not exceed frame wall {}",
            fs.wall_ms
        );
    }

    #[test]
    fn events_carry_parentage_and_frame() {
        let (sink, handle) = MemorySink::new();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.begin_frame(3);
        {
            let _a = rec.span("a");
            let _b = rec.span("b");
        }
        rec.end_frame().unwrap();
        let events = handle.events();
        let starts: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart {
                    id,
                    parent,
                    name,
                    frame,
                } => Some((*id, *parent, *name, *frame)),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0], (0, None, "a", Some(3)));
        assert_eq!(starts[1], (1, Some(0), "b", Some(3)));
        // Guards drop in reverse order: b closes before a.
        let ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec![1, 0]);
    }

    #[test]
    fn scope_restores_previous_recorder() {
        let outer = Recorder::new();
        let inner = Recorder::new();
        {
            let _o = scope(&outer);
            add("c", 1);
            {
                let _i = scope(&inner);
                add("c", 10);
            }
            add("c", 1);
        }
        add("c", 100); // no scope: dropped
        assert_eq!(outer.counter("c"), 2);
        assert_eq!(inner.counter("c"), 10);
    }

    #[test]
    fn free_functions_without_scope_are_noops() {
        let _s = span("stage");
        add("c", 1);
        add_many(&[("c", 1)]);
        gauge("g", 1.0);
        observe("h", 1.0);
        assert!(!current().is_enabled());
    }

    #[test]
    fn gauge_last_write_wins_and_histogram_buckets() {
        let rec = Recorder::new();
        rec.gauge("queue", 4.0);
        rec.gauge("queue", 2.0);
        rec.observe("ms", 0.3);
        rec.observe("ms", 0.3);
        rec.observe("ms", 1e9); // overflow bucket
        let s = rec.summary();
        assert_eq!(s.gauges, vec![("queue".to_string(), 2.0)]);
        let (name, h) = &s.histograms[0];
        assert_eq!(name, "ms");
        assert_eq!(h.count, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(*h.counts.last().unwrap(), 1);
    }
}
