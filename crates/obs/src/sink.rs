//! Event sinks: where recorded [`Event`]s go.
//!
//! The recorder delivers every event, in recording order, to each of its
//! sinks. Sinks must never panic the pipeline: I/O errors are swallowed
//! (telemetry degrades, dispatch does not).

use crate::fleet::FleetMeta;
use crate::{Event, SloEvent, SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives every [`Event`] a recorder emits.
pub trait EventSink {
    /// Called once per event, in recording order.
    fn record(&mut self, event: &Event);
    /// Flushes any buffered output (called by
    /// [`Recorder::flush`](crate::Recorder::flush)).
    fn flush(&mut self) {}
}

/// In-memory sink for tests: stores every event; a cloneable
/// [`MemoryHandle`] reads them back.
#[derive(Debug)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

/// Read side of a [`MemorySink`].
#[derive(Debug, Clone)]
pub struct MemoryHandle {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// A new sink plus the handle that reads its events.
    #[must_use]
    pub fn new() -> (MemorySink, MemoryHandle) {
        let events = Arc::new(Mutex::new(Vec::new()));
        (
            MemorySink {
                events: Arc::clone(&events),
            },
            MemoryHandle { events },
        )
    }
}

impl EventSink for MemorySink {
    fn record(&mut self, event: &Event) {
        if let Ok(mut g) = self.events.lock() {
            g.push(event.clone());
        }
    }
}

impl MemoryHandle {
    /// A copy of every event recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|g| g.clone()).unwrap_or_default()
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().map(|g| g.len()).unwrap_or(0)
    }

    /// Whether no event has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared in-memory byte buffer usable as a [`JsonlSink`] target in
/// tests (the sink is owned by the recorder; the buffer stays readable).
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuffer {
    /// An empty shared buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer contents decoded as UTF-8 (lossy).
    #[must_use]
    pub fn contents(&self) -> String {
        self.bytes
            .lock()
            .map(|g| String::from_utf8_lossy(&g).into_owned())
            .unwrap_or_default()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Ok(mut g) = self.bytes.lock() {
            g.extend_from_slice(buf);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams events as JSON Lines: one self-describing JSON object per
/// event per line, fields in a fixed documented order (see `DESIGN.md`
/// §8 for the schema). The stream is valid line-delimited JSON that
/// `python3 -c "import json; …"` or `jq` parse directly.
///
/// # The schema header
///
/// The first record of every stream is a `meta` line carrying
/// [`SCHEMA_VERSION`] — the schema is self-describing, and readers
/// (the fleet aggregator, the CI re-parse step) reject versions they
/// do not understand. Fleet children extend the header with their
/// [`FleetMeta`] identity via [`with_meta`](Self::with_meta). The
/// header is written lazily, immediately before the first event (or on
/// flush/drop for an eventless stream), so `with_meta` can be chained
/// after construction.
///
/// # Crash durability
///
/// Each line is rendered completely before any byte reaches the writer,
/// so the stream never contains a partially escaped record; dropping the
/// sink flushes whatever is buffered, so a normally-unwinding process
/// (including a panic) leaves a whole-line log. A process killed
/// outright (SIGKILL) loses whatever still sits in the write buffer —
/// opt into [`with_sync_on_frame_end`](Self::with_sync_on_frame_end) to
/// hand the buffer to the OS at every frame boundary, which bounds the
/// loss to the frame in flight.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
    line: String,
    sync_on_frame_end: bool,
    meta: Option<FleetMeta>,
    header_written: bool,
}

impl JsonlSink {
    /// Write-buffer capacity. Event lines are ~100 bytes; a generous
    /// buffer keeps the per-event cost at a memcpy and amortises the
    /// underlying writes far below the event rate.
    const BUF_CAPACITY: usize = 256 * 1024;

    /// A sink writing to `out`.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::with_capacity(Self::BUF_CAPACITY, out),
            line: String::new(),
            sync_on_frame_end: false,
            meta: None,
            header_written: false,
        }
    }

    /// Stamps the stream's `meta` header with a fleet child identity
    /// (run id, shard id, pid, seed, git-describe), turning the log
    /// into a fleet telemetry manifest that
    /// [`fleet::parse_shard`](crate::fleet::parse_shard) can attribute.
    /// Must be called before the first event is recorded; afterwards
    /// the header has already been written and the call is ignored.
    #[must_use]
    pub fn with_meta(mut self, meta: FleetMeta) -> Self {
        if !self.header_written {
            self.meta = Some(meta);
        }
        self
    }

    /// Renders and writes the schema header if it has not gone out yet.
    fn write_header(&mut self) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        let mut line = std::mem::take(&mut self.line);
        line.clear();
        let _ = write!(
            line,
            "{{\"type\":\"meta\",\"schema_version\":{SCHEMA_VERSION}"
        );
        if let Some(meta) = &self.meta {
            line.push_str(",\"run_id\":");
            push_str(&mut line, &meta.run_id);
            let _ = write!(
                line,
                ",\"shard_id\":{},\"pid\":{},\"seed\":{}",
                meta.shard_id, meta.pid, meta.seed
            );
            line.push_str(",\"git\":");
            match &meta.git {
                Some(git) => push_str(&mut line, git),
                None => line.push_str("null"),
            }
        }
        line.push_str("}\n");
        let _ = self.out.write_all(line.as_bytes());
        self.line = line;
    }

    /// Flushes the write buffer to the underlying writer after every
    /// [`Event::FrameEnd`], so a crash loses at most the frame in
    /// flight instead of up to [`BUF_CAPACITY`](Self::BUF_CAPACITY) of
    /// buffered history. Costs one buffered-writer flush per frame;
    /// leave it off for throughput-bound runs that can afford to lose
    /// the tail on a kill.
    #[must_use]
    pub fn with_sync_on_frame_end(mut self) -> Self {
        self.sync_on_frame_end = true;
        self
    }

    /// Whether the sink flushes at every frame boundary.
    #[must_use]
    pub fn sync_on_frame_end(&self) -> bool {
        self.sync_on_frame_end
    }

    /// A sink writing to the file at `path` (created/truncated).
    ///
    /// # Errors
    ///
    /// Propagates the error when the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }

    /// A sink writing into an in-memory [`SharedBuffer`], plus the
    /// buffer itself for reading the log back (used by tests).
    #[must_use]
    pub fn shared() -> (Self, SharedBuffer) {
        let buf = SharedBuffer::new();
        (Self::new(Box::new(buf.clone())), buf)
    }

    fn render(line: &mut String, event: &Event) {
        line.clear();
        match event {
            Event::FrameStart { frame } => {
                let _ = write!(line, "{{\"type\":\"frame_start\",\"frame\":{frame}}}");
            }
            Event::FrameEnd { frame, wall_ms } => {
                let _ = write!(
                    line,
                    "{{\"type\":\"frame_end\",\"frame\":{frame},\"wall_ms\":"
                );
                push_f64(line, *wall_ms);
                line.push('}');
            }
            Event::SpanStart {
                id,
                parent,
                name,
                frame,
            } => {
                let _ = write!(line, "{{\"type\":\"span_start\",\"id\":{id},\"parent\":");
                push_opt_u64(line, *parent);
                line.push_str(",\"name\":");
                push_str(line, name);
                line.push_str(",\"frame\":");
                push_opt_u64(line, *frame);
                line.push('}');
            }
            Event::SpanEnd {
                id,
                name,
                total_ms,
                self_ms,
                frame,
            } => {
                let _ = write!(line, "{{\"type\":\"span_end\",\"id\":{id},\"name\":");
                push_str(line, name);
                line.push_str(",\"total_ms\":");
                push_f64(line, *total_ms);
                line.push_str(",\"self_ms\":");
                push_f64(line, *self_ms);
                line.push_str(",\"frame\":");
                push_opt_u64(line, *frame);
                line.push('}');
            }
            Event::Counter {
                name,
                delta,
                total,
                frame,
            } => {
                line.push_str("{\"type\":\"counter\",\"name\":");
                push_str(line, name);
                let _ = write!(line, ",\"delta\":{delta},\"total\":{total},\"frame\":");
                push_opt_u64(line, *frame);
                line.push('}');
            }
            Event::Gauge { name, value, frame } => {
                line.push_str("{\"type\":\"gauge\",\"name\":");
                push_str(line, name);
                line.push_str(",\"value\":");
                push_f64(line, *value);
                line.push_str(",\"frame\":");
                push_opt_u64(line, *frame);
                line.push('}');
            }
            Event::Histogram {
                name,
                value,
                bucket,
                frame,
            } => {
                line.push_str("{\"type\":\"histogram\",\"name\":");
                push_str(line, name);
                line.push_str(",\"value\":");
                push_f64(line, *value);
                let _ = write!(line, ",\"bucket\":{bucket},\"frame\":");
                push_opt_u64(line, *frame);
                line.push('}');
            }
            Event::Slo(ev) => {
                let (kind, spec, metric, value, threshold, frame, rung) = match ev {
                    SloEvent::Breach {
                        spec,
                        metric,
                        value,
                        threshold,
                        frame,
                        rung,
                    } => ("breach", spec, metric, value, threshold, frame, *rung),
                    SloEvent::Recover {
                        spec,
                        metric,
                        value,
                        threshold,
                        frame,
                    } => ("recover", spec, metric, value, threshold, frame, None),
                };
                let _ = write!(line, "{{\"type\":\"slo\",\"kind\":\"{kind}\",\"spec\":");
                push_str(line, spec);
                let _ = write!(line, ",\"metric\":\"{}\",\"value\":", metric.as_str());
                push_f64(line, *value);
                line.push_str(",\"threshold\":");
                push_f64(line, *threshold);
                line.push_str(",\"rung\":");
                match rung {
                    Some(r) => push_str(line, r),
                    None => line.push_str("null"),
                }
                let _ = write!(line, ",\"frame\":{frame}}}");
            }
        }
        line.push('\n');
    }
}

impl EventSink for JsonlSink {
    fn record(&mut self, event: &Event) {
        self.write_header();
        let mut line = std::mem::take(&mut self.line);
        Self::render(&mut line, event);
        let _ = self.out.write_all(line.as_bytes());
        self.line = line;
        if self.sync_on_frame_end && matches!(event, Event::FrameEnd { .. }) {
            let _ = self.out.flush();
        }
    }

    fn flush(&mut self) {
        self.write_header();
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    /// Flushes buffered lines so a dropped sink — end of run or unwind —
    /// leaves a whole-line log with no partially escaped trailing
    /// record. (`BufWriter` would flush on drop anyway; the explicit
    /// impl makes the guarantee part of the sink's contract rather than
    /// an implementation detail of its buffer.)
    fn drop(&mut self) {
        self.write_header();
        let _ = self.out.flush();
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

/// Appends a JSON string literal (quoted, escaped). Instrument names
/// are clean static identifiers, so the common case is a single bulk
/// copy; the per-character escape walk only runs when a quote,
/// backslash or control character is actually present.
fn push_str(out: &mut String, s: &str) {
    out.push('"');
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

/// Appends an f64 as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 through text exactly.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Aggregates events into an end-of-run table written once — on the
/// first [`flush`](EventSink::flush) (the recorder flushes sinks at end
/// of run) or on drop, whichever comes first.
pub struct SummarySink {
    out: Box<dyn Write + Send>,
    counters: BTreeMap<&'static str, u64>,
    /// Per span name: `(closures, total_ms, self_ms)`.
    spans: BTreeMap<&'static str, (u64, f64, f64)>,
    frames: u64,
    frame_wall_ms: f64,
    rendered: bool,
}

impl SummarySink {
    /// A sink rendering its table to `out`.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        SummarySink {
            out,
            counters: BTreeMap::new(),
            spans: BTreeMap::new(),
            frames: 0,
            frame_wall_ms: 0.0,
            rendered: false,
        }
    }

    fn render(&mut self) {
        if self.rendered {
            return;
        }
        self.rendered = true;
        let mut text = String::new();
        let _ = writeln!(
            text,
            "== observability summary: {} frames, {:.3} ms dispatch wall ==",
            self.frames, self.frame_wall_ms
        );
        if !self.spans.is_empty() {
            let _ = writeln!(
                text,
                "{:<28} {:>8} {:>12} {:>12}",
                "stage", "spans", "total_ms", "self_ms"
            );
            for (name, (count, total, selfms)) in &self.spans {
                let _ = writeln!(text, "{name:<28} {count:>8} {total:>12.3} {selfms:>12.3}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(text, "{:<28} {:>12}", "counter", "total");
            for (name, total) in &self.counters {
                let _ = writeln!(text, "{name:<28} {total:>12}");
            }
        }
        let _ = self.out.write_all(text.as_bytes());
        let _ = self.out.flush();
    }
}

impl EventSink for SummarySink {
    fn record(&mut self, event: &Event) {
        match event {
            Event::FrameEnd { wall_ms, .. } => {
                self.frames += 1;
                self.frame_wall_ms += wall_ms;
            }
            Event::SpanEnd {
                name,
                total_ms,
                self_ms,
                ..
            } => {
                let e = self.spans.entry(name).or_insert((0, 0.0, 0.0));
                e.0 += 1;
                e.1 += total_ms;
                e.2 += self_ms;
            }
            Event::Counter { name, total, .. } => {
                self.counters.insert(name, *total);
            }
            _ => {}
        }
    }

    fn flush(&mut self) {
        self.render();
    }
}

impl Drop for SummarySink {
    fn drop(&mut self) {
        self.render();
    }
}

impl std::fmt::Debug for SummarySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SummarySink")
            .field("frames", &self.frames)
            .field("rendered", &self.rendered)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn jsonl_field_order_is_fixed() {
        let (sink, buf) = JsonlSink::shared();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.begin_frame(0);
        rec.add("cache.hits", 2);
        {
            let _s = rec.span("stage");
        }
        rec.gauge("queue", 3.0);
        rec.observe("ms", 0.5);
        rec.end_frame().unwrap();
        rec.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(lines[0], "{\"type\":\"meta\",\"schema_version\":2}");
        assert_eq!(lines[1], "{\"type\":\"frame_start\",\"frame\":0}");
        assert_eq!(
            lines[2],
            "{\"type\":\"counter\",\"name\":\"cache.hits\",\"delta\":2,\"total\":2,\"frame\":0}"
        );
        assert!(lines[3].starts_with(
            "{\"type\":\"span_start\",\"id\":0,\"parent\":null,\"name\":\"stage\",\"frame\":0}"
        ));
        assert!(lines[4]
            .starts_with("{\"type\":\"span_end\",\"id\":0,\"name\":\"stage\",\"total_ms\":"));
        assert_eq!(
            lines[5],
            "{\"type\":\"gauge\",\"name\":\"queue\",\"value\":3.0,\"frame\":0}"
        );
        assert!(lines[6]
            .starts_with("{\"type\":\"histogram\",\"name\":\"ms\",\"value\":0.5,\"bucket\":5,"));
        assert!(lines[7].starts_with("{\"type\":\"frame_end\",\"frame\":0,\"wall_ms\":"));
    }

    #[test]
    fn schema_header_is_first_record_even_for_eventless_streams() {
        // With events: the header precedes everything.
        let (sink, buf) = JsonlSink::shared();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.add("c", 1);
        rec.flush();
        let text = buf.contents();
        assert!(
            text.starts_with("{\"type\":\"meta\",\"schema_version\":2}\n"),
            "header first, got {text:?}"
        );
        // Without events: flush (and drop) still stamp the stream.
        let (sink, buf) = JsonlSink::shared();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.flush();
        assert_eq!(buf.contents(), "{\"type\":\"meta\",\"schema_version\":2}\n");
    }

    #[test]
    fn fleet_meta_extends_the_header_with_identity_fields() {
        use crate::fleet::FleetMeta;
        let (sink, buf) = JsonlSink::shared();
        let sink = sink.with_meta(FleetMeta {
            run_id: "run-1".to_string(),
            shard_id: 2,
            pid: 777,
            seed: 42,
            git: Some("v0-9-gabc".to_string()),
        });
        let rec = Recorder::with_sink(Box::new(sink));
        rec.begin_frame(0);
        rec.end_frame().unwrap();
        rec.flush();
        let text = buf.contents();
        let first = text.lines().next().unwrap();
        assert_eq!(
            first,
            "{\"type\":\"meta\",\"schema_version\":2,\"run_id\":\"run-1\",\
             \"shard_id\":2,\"pid\":777,\"seed\":42,\"git\":\"v0-9-gabc\"}"
        );
    }

    #[test]
    fn slo_events_render_with_fixed_field_order() {
        use crate::{SloEvent, SloMetric};
        let (sink, buf) = JsonlSink::shared();
        let rec = Recorder::with_sink(Box::new(sink));
        rec.begin_frame(9);
        rec.slo_event(SloEvent::Breach {
            spec: "p95<=deadline".to_string(),
            metric: SloMetric::FrameP95Ms,
            value: 25.0,
            threshold: 5.0,
            frame: 9,
            rung: Some("greedy-nearest"),
        });
        rec.slo_event(SloEvent::Recover {
            spec: "p95<=deadline".to_string(),
            metric: SloMetric::FrameP95Ms,
            value: 2.5,
            threshold: 5.0,
            frame: 9,
        });
        rec.end_frame().unwrap();
        rec.flush();
        let text = buf.contents();
        assert!(text.contains(
            "{\"type\":\"slo\",\"kind\":\"breach\",\"spec\":\"p95<=deadline\",\
             \"metric\":\"frame_p95_ms\",\"value\":25.0,\"threshold\":5.0,\
             \"rung\":\"greedy-nearest\",\"frame\":9}"
        ));
        assert!(text.contains(
            "{\"type\":\"slo\",\"kind\":\"recover\",\"spec\":\"p95<=deadline\",\
             \"metric\":\"frame_p95_ms\",\"value\":2.5,\"threshold\":5.0,\
             \"rung\":null,\"frame\":9}"
        ));
        // The paired counters landed too, attributed to the frame.
        assert!(text.contains("\"name\":\"slo.breaches\",\"delta\":1,\"total\":1,\"frame\":9"));
        assert!(text.contains("\"name\":\"slo.recoveries\",\"delta\":1,\"total\":1,\"frame\":9"));
    }

    #[test]
    fn jsonl_escapes_control_and_quote_characters() {
        let mut s = String::new();
        push_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let mut f = String::new();
        push_f64(&mut f, f64::NAN);
        assert_eq!(f, "null");
        let mut g = String::new();
        push_f64(&mut g, 0.1);
        assert_eq!(g, "0.1");
    }

    #[test]
    fn dropped_sink_leaves_no_partially_escaped_trailing_line() {
        let buf = SharedBuffer::new();
        {
            // Span names that force the escape walk, so a torn write
            // would be visible as an unbalanced quote or missing brace.
            let rec = Recorder::with_sink(Box::new(JsonlSink::new(Box::new(buf.clone()))));
            rec.begin_frame(0);
            {
                let _s = rec.span("we\"ird\nstage\\name");
            }
            rec.add("cache.hits", 3);
            rec.end_frame().unwrap();
            // No explicit flush: dropping the recorder drops the sink,
            // whose Drop impl must flush whole lines.
        }
        let text = buf.contents();
        assert!(!text.is_empty(), "drop flushed the buffered lines");
        assert!(text.ends_with('\n'), "log ends on a line boundary");
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "complete JSON object per line, got {line:?}"
            );
            // Escaped quotes (`\"`) are content, not delimiters; the
            // remaining quote bytes must pair up.
            let total = line.bytes().filter(|&b| b == b'"').count();
            let escaped = line.matches("\\\"").count();
            assert_eq!((total - escaped) % 2, 0, "balanced quotes in {line:?}");
        }
        assert!(text.contains("we\\\"ird\\nstage\\\\name"));
    }

    #[test]
    fn sync_on_frame_end_makes_frames_durable_before_any_flush() {
        // Without the mode, a 256 KiB buffer retains the whole tiny run.
        let (plain, plain_buf) = JsonlSink::shared();
        assert!(!plain.sync_on_frame_end());
        let rec = Recorder::with_sink(Box::new(plain));
        rec.begin_frame(0);
        rec.end_frame().unwrap();
        assert_eq!(
            plain_buf.contents(),
            "",
            "unsynced sink buffers past frame end"
        );
        rec.flush();
        assert!(plain_buf.contents().contains("frame_end"));

        // With it, the frame's lines reach the writer at the boundary —
        // what survives a SIGKILL after the frame.
        let buf = SharedBuffer::new();
        let sink = JsonlSink::new(Box::new(buf.clone())).with_sync_on_frame_end();
        assert!(sink.sync_on_frame_end());
        let rec = Recorder::with_sink(Box::new(sink));
        rec.begin_frame(0);
        rec.add("sim.frames", 1);
        rec.end_frame().unwrap();
        let text = buf.contents();
        assert!(
            text.ends_with('\n') && text.contains("frame_end"),
            "frame boundary flushed without an explicit flush call: {text:?}"
        );
        rec.begin_frame(1);
        // Mid-frame events may stay buffered until the next boundary.
        rec.end_frame().unwrap();
        assert!(buf.contents().matches("frame_end").count() == 2);
    }

    #[test]
    fn summary_sink_renders_once_with_aggregates() {
        let buf = SharedBuffer::new();
        {
            let rec = Recorder::with_sink(Box::new(SummarySink::new(Box::new(buf.clone()))));
            rec.begin_frame(0);
            rec.add("match.proposals", 5);
            {
                let _s = rec.span("deferred_acceptance");
            }
            rec.end_frame().unwrap();
            rec.flush();
            rec.flush(); // second flush must not duplicate the table
        }
        let text = buf.contents();
        assert_eq!(text.matches("observability summary").count(), 1);
        assert!(text.contains("deferred_acceptance"));
        assert!(text.contains("match.proposals"));
        assert!(text.contains("1 frames"));
    }
}
