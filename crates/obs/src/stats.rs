//! Aggregate data types: histograms, per-frame stats, stage breakdowns
//! and the end-of-run summary.

use std::fmt;

/// A fixed-bucket histogram. Bucket edges are a compile-time constant
/// ([`Histogram::DEFAULT_EDGES`], milliseconds-oriented), so two runs
/// observing the same samples produce bit-identical summaries — there is
/// no adaptive resizing.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Upper bucket edges (inclusive), in observation units. A sample
    /// lands in the first bucket whose edge is `>=` the sample; larger
    /// samples land in the overflow bucket at index `DEFAULT_EDGES.len()`.
    pub const DEFAULT_EDGES: [f64; 14] = [
        0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0, 1000.0, 10_000.0,
    ];

    /// An empty histogram over [`Histogram::DEFAULT_EDGES`].
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; Self::DEFAULT_EDGES.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records `value`; returns the index of the bucket it fell into.
    /// Non-finite samples are counted in the overflow bucket.
    pub fn observe(&mut self, value: f64) -> usize {
        let bucket = Self::DEFAULT_EDGES
            .iter()
            .position(|&edge| value <= edge)
            .unwrap_or(Self::DEFAULT_EDGES.len());
        self.counts[bucket] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
        }
        bucket
    }

    /// Total number of samples observed.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket sample counts; the last entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// An owned copy of the histogram state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: Self::DEFAULT_EDGES.to_vec(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) as the upper edge of
    /// the bucket holding the sample of rank `ceil(q·count)` — the
    /// standard fixed-bucket estimate: exact bucket membership, value
    /// resolved to the bucket's edge. Deterministic for identical
    /// observation sequences.
    ///
    /// Returns `None` when the histogram is empty (no sample has a
    /// rank). Samples in the overflow bucket have no upper edge and
    /// resolve to `f64::INFINITY`, which compares correctly against any
    /// finite threshold.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Some(
                    Self::DEFAULT_EDGES
                        .get(bucket)
                        .copied()
                        .unwrap_or(f64::INFINITY),
                );
            }
        }
        // Unreachable: cumulative equals `count` after the loop and
        // `rank <= count`; kept total rather than panicking in telemetry.
        None
    }

    /// Removes one previously observed sample, given the bucket index
    /// [`Histogram::observe`] returned for it and the original value.
    /// Used by [`RollingWindow`] to evict expired samples; callers must
    /// pass back exactly what they observed or counts go negative-ish
    /// (saturating, but meaningless).
    fn forget(&mut self, bucket: usize, value: f64) {
        self.counts[bucket] = self.counts[bucket].saturating_sub(1);
        self.count = self.count.saturating_sub(1);
        if value.is_finite() {
            self.sum -= value;
        }
    }
}

/// A fixed-capacity sliding window of samples with histogram-backed
/// quantiles: pushing beyond capacity evicts the oldest sample, so
/// quantiles always describe the last `capacity` observations. Built for
/// the SLO monitor's rolling per-frame latency percentiles; deterministic
/// like [`Histogram`] itself.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingWindow {
    capacity: usize,
    hist: Histogram,
    entries: std::collections::VecDeque<(usize, f64)>,
}

impl RollingWindow {
    /// An empty window holding at most `capacity` samples.
    /// `capacity` must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` — a zero-sample window has no
    /// quantiles and indicates a misconfigured `SloSpec`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "rolling window capacity must be >= 1");
        RollingWindow {
            capacity,
            hist: Histogram::new(),
            entries: std::collections::VecDeque::with_capacity(capacity + 1),
        }
    }

    /// Records `value`, evicting the oldest sample when full.
    pub fn push(&mut self, value: f64) {
        let bucket = self.hist.observe(value);
        self.entries.push_back((bucket, value));
        if self.entries.len() > self.capacity {
            let (old_bucket, old_value) = self.entries.pop_front().expect("len > capacity >= 1");
            self.hist.forget(old_bucket, old_value);
        }
    }

    /// The `q`-quantile over the samples currently in the window
    /// (`None` when empty). See [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// Number of samples currently in the window (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The window's maximum sample count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mean of the finite samples currently in the window (0 when
    /// empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.hist.mean()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Owned snapshot of a [`Histogram`], as exported by summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Upper bucket edges (inclusive).
    pub edges: Vec<f64>,
    /// Per-bucket counts; one longer than `edges` (overflow bucket last).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
}

/// What one simulator frame recorded: per-stage self-times and
/// per-counter deltas, both name-sorted. Returned by
/// [`Recorder::end_frame`](crate::Recorder::end_frame).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrameStats {
    /// Frame index.
    pub frame: u64,
    /// Wall-clock of the frame's dispatch window, milliseconds.
    pub wall_ms: f64,
    /// `(stage name, self-time ms)` — total minus child-span time, so the
    /// values sum to at most `wall_ms`.
    pub stages: Vec<(String, f64)>,
    /// `(counter name, increment during this frame)`.
    pub counters: Vec<(String, u64)>,
}

impl FrameStats {
    /// This frame's increment of counter `name` (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// This frame's self-time for stage `name` (0 if absent).
    #[must_use]
    pub fn stage_self_ms(&self, name: &str) -> f64 {
        self.stages
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.stages[i].1)
            .unwrap_or(0.0)
    }

    /// Sum of all stage self-times this frame.
    #[must_use]
    pub fn total_stage_ms(&self) -> f64 {
        self.stages.iter().map(|(_, ms)| ms).sum()
    }
}

/// Self-time per stage per frame over a whole run: the simulator pushes
/// one [`FrameStats`] per dispatched frame. Attached to `SimReport` and
/// exported into every `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageBreakdown {
    /// One entry per dispatched frame, in frame order.
    pub frames: Vec<FrameStats>,
}

impl StageBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a frame's stats.
    pub fn push(&mut self, stats: FrameStats) {
        self.frames.push(stats);
    }

    /// Whether any frame was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total self-time per stage across all frames, name-sorted.
    #[must_use]
    pub fn stage_totals(&self) -> Vec<(String, f64)> {
        let mut totals: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
        for fs in &self.frames {
            for (name, ms) in &fs.stages {
                *totals.entry(name).or_insert(0.0) += ms;
            }
        }
        totals
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    /// Total increment per counter across all frames, name-sorted.
    #[must_use]
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for fs in &self.frames {
            for (name, delta) in &fs.counters {
                *totals.entry(name).or_insert(0) += delta;
            }
        }
        totals
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    /// Total increment of counter `name` across all frames.
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.frames.iter().map(|fs| fs.counter(name)).sum()
    }

    /// Sum of all stage self-times across all frames.
    #[must_use]
    pub fn total_self_ms(&self) -> f64 {
        self.frames.iter().map(FrameStats::total_stage_ms).sum()
    }
}

/// End-of-run aggregate snapshot of a recorder's instruments. Formats as
/// a readable table via [`fmt::Display`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    /// `(name, cumulative value)`, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)`, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)`, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<32} {value}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<32} {value}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, h) in &self.histograms {
                writeln!(
                    f,
                    "  {name:<32} count={} sum={:.3} mean={:.3}",
                    h.count,
                    h.sum,
                    if h.count == 0 {
                        0.0
                    } else {
                        h.sum / h.count as f64
                    }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_deterministic() {
        let mut h = Histogram::new();
        assert_eq!(h.observe(0.0005), 0);
        assert_eq!(h.observe(0.001), 0); // inclusive upper edge
        assert_eq!(h.observe(0.002), 1);
        assert_eq!(h.observe(10_000.0), Histogram::DEFAULT_EDGES.len() - 1);
        assert_eq!(h.observe(10_001.0), Histogram::DEFAULT_EDGES.len());
        assert_eq!(h.observe(f64::NAN), Histogram::DEFAULT_EDGES.len());
        assert_eq!(h.count(), 6);
        assert!((h.sum() - 20001.0035).abs() < 1e-9);
    }

    #[test]
    fn quantile_of_empty_window_is_none() {
        // Empty histogram and empty rolling window: no sample has a
        // rank, so every quantile is undefined rather than 0.
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        let w = RollingWindow::new(8);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.quantile(0.5), None);
        assert_eq!(w.quantile(0.99), None);
    }

    #[test]
    fn quantile_all_zero_counts_after_full_eviction_is_none() {
        // A window that once held samples but has evicted every one of
        // them down to all-zero bucket counts must report None again,
        // not a stale edge.
        let mut w = RollingWindow::new(2);
        w.push(0.3);
        w.push(0.4);
        w.push(100.0);
        w.push(100.0); // the two 0.3/0.4 samples are fully evicted
        assert_eq!(w.quantile(0.5), Some(100.0));
        assert_eq!(w.quantile(0.0), Some(100.0));
        // Drain to empty via the internal forget path.
        let mut h = Histogram::new();
        let b = h.observe(1.0);
        h.forget(b, 1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 0, "all-zero counts");
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_single_bucket_saturation_returns_that_edge() {
        // Every sample in one bucket: all quantiles, including the
        // extremes, resolve to that bucket's upper edge.
        let mut w = RollingWindow::new(4);
        for _ in 0..16 {
            w.push(0.3); // bucket edge 0.5
        }
        assert_eq!(w.len(), 4, "window clamps at capacity");
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(w.quantile(q), Some(0.5));
        }
        // Saturating the overflow bucket resolves to +inf (no edge).
        let mut o = RollingWindow::new(4);
        for _ in 0..4 {
            o.push(1e9);
        }
        assert_eq!(o.quantile(0.5), Some(f64::INFINITY));
    }

    #[test]
    fn rolling_window_evicts_oldest_and_quantiles_follow() {
        let mut w = RollingWindow::new(3);
        w.push(0.2); // bucket edge 0.25
        w.push(0.2);
        w.push(0.2);
        assert_eq!(w.quantile(0.95), Some(0.25));
        // Three large samples push the small ones out entirely.
        w.push(20.0); // bucket edge 25.0
        w.push(20.0);
        assert_eq!(w.quantile(0.5), Some(25.0), "median crosses after 2/3");
        w.push(20.0);
        assert_eq!(w.quantile(0.0), Some(25.0), "old samples fully evicted");
        assert!((w.mean() - 20.0).abs() < 1e-12);
        assert_eq!(w.capacity(), 3);
    }

    #[test]
    fn quantile_ranks_are_exact_at_bucket_boundaries() {
        // 10 samples: 9 in the 0.25 bucket, 1 in the 25.0 bucket. The
        // p90 sample (rank 9) is still in the low bucket; p91+ crosses.
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.observe(0.2);
        }
        h.observe(20.0);
        assert_eq!(h.quantile(0.90), Some(0.25));
        assert_eq!(h.quantile(0.91), Some(25.0));
        assert_eq!(h.quantile(1.0), Some(25.0));
        // Out-of-range q is clamped, not panicking.
        assert_eq!(h.quantile(-1.0), Some(0.25));
        assert_eq!(h.quantile(2.0), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "capacity must be >= 1")]
    fn rolling_window_rejects_zero_capacity() {
        let _ = RollingWindow::new(0);
    }

    #[test]
    fn frame_stats_lookups_use_sorted_order() {
        let fs = FrameStats {
            frame: 2,
            wall_ms: 5.0,
            stages: vec![("a".into(), 1.0), ("b".into(), 2.0)],
            counters: vec![("x".into(), 3), ("y".into(), 4)],
        };
        assert_eq!(fs.counter("x"), 3);
        assert_eq!(fs.counter("z"), 0);
        assert_eq!(fs.stage_self_ms("b"), 2.0);
        assert_eq!(fs.stage_self_ms("c"), 0.0);
        assert_eq!(fs.total_stage_ms(), 3.0);
    }

    #[test]
    fn breakdown_totals_aggregate_across_frames() {
        let mut b = StageBreakdown::new();
        assert!(b.is_empty());
        b.push(FrameStats {
            frame: 0,
            wall_ms: 4.0,
            stages: vec![("da".into(), 1.0), ("prefs".into(), 2.0)],
            counters: vec![("cache.hits".into(), 2)],
        });
        b.push(FrameStats {
            frame: 1,
            wall_ms: 3.0,
            stages: vec![("da".into(), 0.5)],
            counters: vec![("cache.hits".into(), 1), ("cache.misses".into(), 7)],
        });
        assert_eq!(
            b.stage_totals(),
            vec![("da".to_string(), 1.5), ("prefs".to_string(), 2.0)]
        );
        assert_eq!(
            b.counter_totals(),
            vec![
                ("cache.hits".to_string(), 3),
                ("cache.misses".to_string(), 7)
            ]
        );
        assert_eq!(b.counter_total("cache.hits"), 3);
        assert_eq!(b.total_self_ms(), 3.5);
    }

    #[test]
    fn summary_display_renders_every_section() {
        let s = Summary {
            counters: vec![("c".into(), 1)],
            gauges: vec![("g".into(), 2.5)],
            histograms: vec![(
                "h".into(),
                HistogramSnapshot {
                    edges: vec![1.0],
                    counts: vec![1, 0],
                    count: 1,
                    sum: 0.5,
                },
            )],
        };
        let text = s.to_string();
        assert!(text.contains("counters:"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("mean=0.500"));
    }
}
