//! Live SLO monitoring: declarative thresholds evaluated per frame.
//!
//! A [`SloMonitor`] is a streaming evaluator: the simulator feeds it one
//! [`FrameObservation`] per dispatched frame, and it checks every
//! declared [`SloSpec`] against metrics computed over a rolling window
//! of recent frames (latency percentiles via the fixed-bucket
//! [`RollingWindow`], served-ratio, degradation-rate, checkpoint
//! overhead). Crossing a threshold emits a typed
//! [`SloEvent::Breach`]; returning within bounds emits a matching
//! [`SloEvent::Recover`] — one transition per crossing, not one event
//! per violating frame.
//!
//! The monitor is read-only telemetry: it observes the frame loop and
//! never feeds back into dispatch, preserving the enabled==disabled
//! bit-identity contract (`obs_equivalence.rs`). Because a breach often
//! coincides with the engine's deadline degradation ladder stepping
//! down, each breach names the most recent ladder rung active inside
//! its window (when any), tying "the SLO broke" to "because dispatch
//! degraded to X".

use crate::stats::RollingWindow;
use std::collections::VecDeque;
use std::fmt;

/// Which windowed metric an [`SloSpec`] constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMetric {
    /// Median per-frame dispatch latency (ms) over the window.
    FrameP50Ms,
    /// 95th-percentile per-frame dispatch latency (ms) over the window.
    FrameP95Ms,
    /// 99th-percentile per-frame dispatch latency (ms) over the window.
    FrameP99Ms,
    /// Served requests divided by arrivals over the window (evaluated
    /// only on windows with at least one arrival).
    ServedRatio,
    /// Fraction of frames in the window on which the degradation ladder
    /// stepped down.
    DegradationRate,
    /// Checkpoint machinery time as a percentage of dispatch time over
    /// the window (evaluated only when dispatch time is positive).
    CheckpointOverheadPct,
}

impl SloMetric {
    /// Stable snake_case identifier used in JSONL records and fleet
    /// summaries.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SloMetric::FrameP50Ms => "frame_p50_ms",
            SloMetric::FrameP95Ms => "frame_p95_ms",
            SloMetric::FrameP99Ms => "frame_p99_ms",
            SloMetric::ServedRatio => "served_ratio",
            SloMetric::DegradationRate => "degradation_rate",
            SloMetric::CheckpointOverheadPct => "checkpoint_overhead_pct",
        }
    }
}

impl fmt::Display for SloMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The direction of an [`SloSpec`] threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloBound {
    /// The metric must stay `<=` the threshold (latency, rates,
    /// overhead).
    Max(f64),
    /// The metric must stay `>=` the threshold (served ratio).
    Min(f64),
}

impl SloBound {
    /// The threshold value, direction-agnostic.
    #[must_use]
    pub fn threshold(self) -> f64 {
        match self {
            SloBound::Max(t) | SloBound::Min(t) => t,
        }
    }

    fn violated_by(self, value: f64) -> bool {
        match self {
            SloBound::Max(t) => value > t,
            SloBound::Min(t) => value < t,
        }
    }
}

/// One declarative SLO: a named threshold on a windowed metric.
///
/// The window is a frame count; metrics are recomputed after every
/// frame over the last `window` observations, so a spec with
/// `window == 64` answers "over the last 64 dispatched frames, did the
/// p95 stay under the deadline?".
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Spec name as it appears in events and fleet summaries.
    pub name: String,
    /// The windowed metric being constrained.
    pub metric: SloMetric,
    /// Threshold and direction.
    pub bound: SloBound,
    /// Rolling window length in frames (≥ 1).
    pub window: usize,
}

impl SloSpec {
    /// An upper-bound spec: `metric <= threshold` over `window` frames.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    #[must_use]
    pub fn max(name: impl Into<String>, metric: SloMetric, threshold: f64, window: usize) -> Self {
        assert!(window > 0, "SLO window must be >= 1 frame");
        SloSpec {
            name: name.into(),
            metric,
            bound: SloBound::Max(threshold),
            window,
        }
    }

    /// A lower-bound spec: `metric >= threshold` over `window` frames.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    #[must_use]
    pub fn min(name: impl Into<String>, metric: SloMetric, threshold: f64, window: usize) -> Self {
        assert!(window > 0, "SLO window must be >= 1 frame");
        SloSpec {
            name: name.into(),
            metric,
            bound: SloBound::Min(threshold),
            window,
        }
    }
}

/// What one simulator frame tells the monitor. All fields are outputs
/// of the frame that just closed; none of them flow back into dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameObservation {
    /// Frame index.
    pub frame: u64,
    /// Wall-clock of the frame's dispatch window, milliseconds.
    pub dispatch_ms: f64,
    /// Requests served (picked up) during this frame.
    pub served: u64,
    /// Requests that arrived during this frame.
    pub arrivals: u64,
    /// Ladder rung the dispatcher degraded **to** this frame, if the
    /// degradation ladder fired (e.g. `"NSTD-P"`, `"greedy-nearest"`).
    pub rung: Option<&'static str>,
    /// Checkpoint machinery time attributed to this frame, milliseconds
    /// (0 on frames without a checkpoint write).
    pub ckpt_ms: f64,
}

/// An SLO threshold transition: emitted once when a spec first goes out
/// of bounds ([`SloEvent::Breach`]) and once when it comes back
/// ([`SloEvent::Recover`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SloEvent {
    /// The spec's metric left its bound.
    Breach {
        /// Name of the breached [`SloSpec`].
        spec: String,
        /// Metric that crossed.
        metric: SloMetric,
        /// The metric's windowed value at the crossing.
        value: f64,
        /// The spec's threshold.
        threshold: f64,
        /// Frame on which the breach was detected.
        frame: u64,
        /// Most recent degradation-ladder rung inside the window, when
        /// the breach coincides with ladder activity — names the
        /// degradation that accompanied (and usually caused) the
        /// breach.
        rung: Option<&'static str>,
    },
    /// The spec's metric returned within its bound.
    Recover {
        /// Name of the recovered [`SloSpec`].
        spec: String,
        /// Metric that recovered.
        metric: SloMetric,
        /// The metric's windowed value at recovery.
        value: f64,
        /// The spec's threshold.
        threshold: f64,
        /// Frame on which the recovery was detected.
        frame: u64,
    },
}

impl SloEvent {
    /// The spec name the event belongs to.
    #[must_use]
    pub fn spec(&self) -> &str {
        match self {
            SloEvent::Breach { spec, .. } | SloEvent::Recover { spec, .. } => spec,
        }
    }

    /// The frame the transition was detected on.
    #[must_use]
    pub fn frame(&self) -> u64 {
        match self {
            SloEvent::Breach { frame, .. } | SloEvent::Recover { frame, .. } => *frame,
        }
    }

    /// The constrained metric.
    #[must_use]
    pub fn metric(&self) -> SloMetric {
        match self {
            SloEvent::Breach { metric, .. } | SloEvent::Recover { metric, .. } => *metric,
        }
    }

    /// Whether this is a breach (as opposed to a recovery).
    #[must_use]
    pub fn is_breach(&self) -> bool {
        matches!(self, SloEvent::Breach { .. })
    }
}

/// Rolling per-spec evaluation state.
#[derive(Debug, Clone)]
struct SpecState {
    in_breach: bool,
    /// Dispatch-latency samples for the quantile metrics.
    latency: RollingWindow,
    /// The last `window` frames' non-latency facts, oldest first.
    frames: VecDeque<FrameObservation>,
    served: u64,
    arrivals: u64,
    degraded_frames: u64,
    ckpt_ms: f64,
    dispatch_ms: f64,
}

impl SpecState {
    fn new(window: usize) -> Self {
        SpecState {
            in_breach: false,
            latency: RollingWindow::new(window),
            frames: VecDeque::with_capacity(window + 1),
            served: 0,
            arrivals: 0,
            degraded_frames: 0,
            ckpt_ms: 0.0,
            dispatch_ms: 0.0,
        }
    }

    fn push(&mut self, obs: &FrameObservation, window: usize) {
        self.latency.push(obs.dispatch_ms);
        self.frames.push_back(*obs);
        self.served += obs.served;
        self.arrivals += obs.arrivals;
        self.degraded_frames += u64::from(obs.rung.is_some());
        self.ckpt_ms += obs.ckpt_ms;
        self.dispatch_ms += obs.dispatch_ms;
        if self.frames.len() > window {
            let old = self.frames.pop_front().expect("len > window >= 1");
            self.served -= old.served;
            self.arrivals -= old.arrivals;
            self.degraded_frames -= u64::from(old.rung.is_some());
            self.ckpt_ms -= old.ckpt_ms;
            self.dispatch_ms -= old.dispatch_ms;
        }
    }

    /// The windowed metric value, or `None` when the window cannot
    /// evaluate it yet (empty, or a ratio with a zero denominator).
    fn value(&self, metric: SloMetric) -> Option<f64> {
        match metric {
            SloMetric::FrameP50Ms => self.latency.quantile(0.50),
            SloMetric::FrameP95Ms => self.latency.quantile(0.95),
            SloMetric::FrameP99Ms => self.latency.quantile(0.99),
            SloMetric::ServedRatio => {
                (self.arrivals > 0).then(|| self.served as f64 / self.arrivals as f64)
            }
            SloMetric::DegradationRate => {
                let n = self.frames.len();
                (n > 0).then(|| self.degraded_frames as f64 / n as f64)
            }
            SloMetric::CheckpointOverheadPct => {
                (self.dispatch_ms > 0.0).then(|| 100.0 * self.ckpt_ms / self.dispatch_ms)
            }
        }
    }

    /// Most recent ladder rung inside the window, if any.
    fn latest_rung(&self) -> Option<&'static str> {
        self.frames.iter().rev().find_map(|o| o.rung)
    }
}

/// Streaming SLO evaluator over a set of [`SloSpec`]s.
///
/// Feed it one [`FrameObservation`] per frame via
/// [`SloMonitor::on_frame`]; it returns the transitions that frame
/// caused (usually none) and keeps the full transition history in
/// [`SloMonitor::events`].
#[derive(Debug, Clone)]
pub struct SloMonitor {
    specs: Vec<SloSpec>,
    states: Vec<SpecState>,
    events: Vec<SloEvent>,
}

impl SloMonitor {
    /// A monitor evaluating `specs`.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let states = specs.iter().map(|s| SpecState::new(s.window)).collect();
        SloMonitor {
            specs,
            states,
            events: Vec::new(),
        }
    }

    /// Whether the monitor has no specs (and will never emit events).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The declared specs, in evaluation order.
    #[must_use]
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Records one frame's observation and evaluates every spec.
    /// Returns the transitions this frame caused, in spec order (empty
    /// for the overwhelming majority of frames).
    pub fn on_frame(&mut self, obs: &FrameObservation) -> Vec<SloEvent> {
        let mut fired = Vec::new();
        for (spec, state) in self.specs.iter().zip(self.states.iter_mut()) {
            state.push(obs, spec.window);
            let Some(value) = state.value(spec.metric) else {
                continue;
            };
            let violated = spec.bound.violated_by(value);
            if violated && !state.in_breach {
                state.in_breach = true;
                fired.push(SloEvent::Breach {
                    spec: spec.name.clone(),
                    metric: spec.metric,
                    value,
                    threshold: spec.bound.threshold(),
                    frame: obs.frame,
                    rung: state.latest_rung(),
                });
            } else if !violated && state.in_breach {
                state.in_breach = false;
                fired.push(SloEvent::Recover {
                    spec: spec.name.clone(),
                    metric: spec.metric,
                    value,
                    threshold: spec.bound.threshold(),
                    frame: obs.frame,
                });
            }
        }
        self.events.extend(fired.iter().cloned());
        fired
    }

    /// Every transition emitted so far, in detection order.
    #[must_use]
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// Number of breaches emitted so far.
    #[must_use]
    pub fn breaches(&self) -> usize {
        self.events.iter().filter(|e| e.is_breach()).count()
    }

    /// Spec names currently out of bounds.
    #[must_use]
    pub fn active_breaches(&self) -> Vec<&str> {
        self.specs
            .iter()
            .zip(&self.states)
            .filter(|(_, st)| st.in_breach)
            .map(|(sp, _)| sp.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(frame: u64, dispatch_ms: f64) -> FrameObservation {
        FrameObservation {
            frame,
            dispatch_ms,
            served: 1,
            arrivals: 1,
            rung: None,
            ckpt_ms: 0.0,
        }
    }

    #[test]
    fn breach_and_recover_fire_once_per_crossing() {
        let mut mon = SloMonitor::new(vec![SloSpec::max(
            "p95<=1ms",
            SloMetric::FrameP95Ms,
            1.0,
            4,
        )]);
        for f in 0..4 {
            assert!(mon.on_frame(&frame(f, 0.3)).is_empty());
        }
        // Window fills with slow frames; exactly one breach fires.
        let mut fired = Vec::new();
        for f in 4..8 {
            fired.extend(mon.on_frame(&frame(f, 20.0)));
        }
        assert_eq!(fired.len(), 1);
        assert!(fired[0].is_breach());
        assert_eq!(fired[0].spec(), "p95<=1ms");
        assert_eq!(mon.active_breaches(), vec!["p95<=1ms"]);
        // Fast frames flush the window; exactly one recovery fires.
        let mut fired = Vec::new();
        for f in 8..16 {
            fired.extend(mon.on_frame(&frame(f, 0.3)));
        }
        assert_eq!(fired.len(), 1);
        assert!(!fired[0].is_breach());
        assert!(mon.active_breaches().is_empty());
        assert_eq!(mon.breaches(), 1);
        assert_eq!(mon.events().len(), 2);
    }

    #[test]
    fn breach_names_the_ladder_rung_in_window() {
        let mut mon = SloMonitor::new(vec![SloSpec::max(
            "no-degradation",
            SloMetric::DegradationRate,
            0.0,
            8,
        )]);
        assert!(mon.on_frame(&frame(0, 0.3)).is_empty());
        let mut obs = frame(1, 0.3);
        obs.rung = Some("greedy-nearest");
        let fired = mon.on_frame(&obs);
        assert_eq!(fired.len(), 1);
        match &fired[0] {
            SloEvent::Breach { rung, value, .. } => {
                assert_eq!(*rung, Some("greedy-nearest"));
                assert!((value - 0.5).abs() < 1e-12);
            }
            other => panic!("expected breach, got {other:?}"),
        }
    }

    #[test]
    fn served_ratio_is_min_bound_and_skips_empty_windows() {
        let mut mon = SloMonitor::new(vec![SloSpec::min(
            "served>=50%",
            SloMetric::ServedRatio,
            0.5,
            4,
        )]);
        // No arrivals: the ratio is unevaluable, no breach.
        let quiet = FrameObservation {
            frame: 0,
            dispatch_ms: 0.1,
            served: 0,
            arrivals: 0,
            rung: None,
            ckpt_ms: 0.0,
        };
        assert!(mon.on_frame(&quiet).is_empty());
        // 1 served of 4 arrivals: breach.
        let busy = FrameObservation {
            frame: 1,
            dispatch_ms: 0.1,
            served: 1,
            arrivals: 4,
            rung: None,
            ckpt_ms: 0.0,
        };
        let fired = mon.on_frame(&busy);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].is_breach());
    }

    #[test]
    fn checkpoint_overhead_uses_windowed_percentage() {
        let mut mon = SloMonitor::new(vec![SloSpec::max(
            "ckpt<=3%",
            SloMetric::CheckpointOverheadPct,
            3.0,
            2,
        )]);
        let mut cheap = frame(0, 10.0);
        cheap.ckpt_ms = 0.1; // 1%
        assert!(mon.on_frame(&cheap).is_empty());
        let mut pricey = frame(1, 10.0);
        pricey.ckpt_ms = 1.0; // window: 1.1 / 20 = 5.5%
        let fired = mon.on_frame(&pricey);
        assert_eq!(fired.len(), 1);
        match &fired[0] {
            SloEvent::Breach {
                metric,
                value,
                threshold,
                ..
            } => {
                assert_eq!(*metric, SloMetric::CheckpointOverheadPct);
                assert!((value - 5.5).abs() < 1e-9);
                assert!((threshold - 3.0).abs() < 1e-12);
            }
            other => panic!("expected breach, got {other:?}"),
        }
        // Eviction: two cheap frames later the window is clean again.
        let mut fired = Vec::new();
        for f in 2..4 {
            let mut c = frame(f, 10.0);
            c.ckpt_ms = 0.1;
            fired.extend(mon.on_frame(&c));
        }
        assert_eq!(fired.len(), 1);
        assert!(!fired[0].is_breach());
    }

    #[test]
    fn monitor_without_specs_is_inert() {
        let mut mon = SloMonitor::new(Vec::new());
        assert!(mon.is_empty());
        for f in 0..100 {
            assert!(mon.on_frame(&frame(f, 1e6)).is_empty());
        }
        assert!(mon.events().is_empty());
    }
}
