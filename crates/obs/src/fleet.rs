//! Fleet telemetry: merging many processes' JSONL streams into one view.
//!
//! A supervised run is N child processes, each with its own recorder
//! and its own [`JsonlSink`](crate::JsonlSink) manifest. This module is
//! the read side: [`parse_shard`] re-parses one child's stream
//! (validating the schema header, span balance and the self≤wall
//! invariant), and [`merge`] folds N shards into a single
//! [`FleetSummary`] — fleet-wide stage totals, counter totals and frame
//! latency distribution, with per-shard attribution preserved.
//!
//! # The manifest header
//!
//! The first record of every stream is a `meta` line carrying
//! [`SCHEMA_VERSION`](crate::SCHEMA_VERSION) and, for fleet children,
//! the [`FleetMeta`] identity (run id, shard id, pid, seed,
//! git-describe). Streams with an unknown schema version are rejected
//! outright — the schema is self-describing, consumers never guess.
//!
//! # Clock skew
//!
//! Each child measures on its own monotonic clock. Monotonic origins
//! are process-local and incomparable, so the merge never relates
//! absolute times across shards: frames align by frame index, and all
//! cross-shard arithmetic is over durations. Within one shard, the
//! self-time ≤ wall-clock invariant is validated with a small relative
//! tolerance plus an absolute slack ([`FleetOptions`]) to absorb
//! rounding and timer-granularity skew.

use crate::stats::{FrameStats, Histogram, HistogramSnapshot, StageBreakdown};
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;

/// Identity of one fleet child, stamped into its manifest header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetMeta {
    /// Identifier shared by every child of one supervised run.
    pub run_id: String,
    /// This child's shard index within the run.
    pub shard_id: u32,
    /// The child's OS process id.
    pub pid: u32,
    /// The child's RNG seed.
    pub seed: u64,
    /// `git describe` of the build, when known.
    pub git: Option<String>,
}

impl FleetMeta {
    /// A meta record for shard `shard_id` of run `run_id`, stamped with
    /// the current process id.
    #[must_use]
    pub fn new(run_id: impl Into<String>, shard_id: u32, seed: u64) -> Self {
        FleetMeta {
            run_id: run_id.into(),
            shard_id,
            pid: std::process::id(),
            seed,
            git: None,
        }
    }

    /// Attaches a `git describe` string.
    #[must_use]
    pub fn with_git(mut self, git: impl Into<String>) -> Self {
        self.git = Some(git.into());
        self
    }
}

/// Tolerances for intra-shard validation during a fleet merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetOptions {
    /// Relative tolerance on the per-frame self ≤ wall check, percent.
    pub skew_tolerance_pct: f64,
    /// Absolute slack on the same check, milliseconds — absorbs timer
    /// granularity on near-zero frames.
    pub skew_slack_ms: f64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            skew_tolerance_pct: 1.0,
            skew_slack_ms: 0.5,
        }
    }
}

/// An SLO transition as read back from a shard's JSONL stream. String
/// fields because the closed `&'static str` vocabulary of the writing
/// process does not survive a process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SloLine {
    /// Frame the transition was detected on.
    pub frame: u64,
    /// `"breach"` or `"recover"`.
    pub kind: String,
    /// Spec name.
    pub spec: String,
    /// Metric identifier (`frame_p95_ms`, …).
    pub metric: String,
    /// Windowed metric value at the transition.
    pub value: f64,
    /// Spec threshold.
    pub threshold: f64,
    /// Ladder rung named by a breach, if any.
    pub rung: Option<String>,
}

/// One child's re-parsed, validated telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTelemetry {
    /// The manifest header.
    pub meta: FleetMeta,
    /// Per-frame stage/counter breakdown reconstructed from the stream.
    pub breakdown: StageBreakdown,
    /// SLO transitions recorded by the child, in stream order.
    pub slo_events: Vec<SloLine>,
    /// Total `span_start` records seen (balance-checked against ends).
    pub span_starts: u64,
    /// Total `span_end` records seen.
    pub span_ends: u64,
}

impl ShardTelemetry {
    /// Number of complete frames in the stream.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.breakdown.frames.len() as u64
    }

    /// Sum of frame wall-clock across the stream, milliseconds.
    #[must_use]
    pub fn wall_ms(&self) -> f64 {
        self.breakdown.frames.iter().map(|f| f.wall_ms).sum()
    }
}

/// Per-shard slice of a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// The shard's identity.
    pub meta: FleetMeta,
    /// Frames the shard dispatched.
    pub frames: u64,
    /// Sum of the shard's frame wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Sum of the shard's stage self-times, milliseconds.
    pub total_self_ms: f64,
    /// Self-time per stage, name-sorted.
    pub stage_totals: Vec<(String, f64)>,
    /// Counter totals, name-sorted.
    pub counter_totals: Vec<(String, u64)>,
    /// SLO breach count.
    pub breaches: u64,
    /// SLO recovery count.
    pub recoveries: u64,
    /// The shard's SLO transition timeline.
    pub slo_events: Vec<SloLine>,
}

/// N shards merged into one fleet-wide view, shard attribution intact.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// The run id every shard agreed on.
    pub run_id: String,
    /// Schema version of the source streams.
    pub schema_version: u32,
    /// Per-shard summaries, sorted by shard id.
    pub shards: Vec<ShardSummary>,
    /// Total frames across all shards.
    pub frames: u64,
    /// Total frame wall-clock across all shards, milliseconds.
    pub wall_ms: f64,
    /// Total stage self-time across all shards, milliseconds.
    pub total_self_ms: f64,
    /// Fleet-wide self-time per stage, name-sorted.
    pub stage_totals: Vec<(String, f64)>,
    /// Fleet-wide counter totals, name-sorted.
    pub counter_totals: Vec<(String, u64)>,
    /// Distribution of per-frame wall-clock across the whole fleet.
    pub latency: HistogramSnapshot,
}

/// Why a stream or a merge was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The stream had no lines at all.
    Empty,
    /// The first record was not a `meta` header.
    MissingHeader,
    /// The header declared a schema this reader does not know.
    UnknownSchema {
        /// The version the stream declared.
        found: u64,
    },
    /// A line failed to parse (1-based line number and reason).
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Span starts and ends did not match up.
    SpanImbalance {
        /// Human-readable imbalance description.
        message: String,
    },
    /// A frame's stage self-times exceeded its wall-clock beyond the
    /// configured skew tolerance.
    SelfExceedsWall {
        /// Frame index.
        frame: u64,
        /// Sum of stage self-times, ms.
        self_ms: f64,
        /// Frame wall-clock, ms.
        wall_ms: f64,
    },
    /// Two shards disagreed on the run id.
    RunIdMismatch {
        /// The first shard's run id.
        expected: String,
        /// The disagreeing shard's run id.
        found: String,
    },
    /// Two shards claimed the same shard id.
    DuplicateShard {
        /// The duplicated id.
        shard_id: u32,
    },
    /// [`merge`] was called with no shards.
    NoShards,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Empty => write!(f, "telemetry stream is empty"),
            FleetError::MissingHeader => {
                write!(f, "first record is not a schema-stamped meta header")
            }
            FleetError::UnknownSchema { found } => write!(
                f,
                "unknown telemetry schema version {found} (reader understands {SCHEMA_VERSION})"
            ),
            FleetError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FleetError::SpanImbalance { message } => write!(f, "span imbalance: {message}"),
            FleetError::SelfExceedsWall {
                frame,
                self_ms,
                wall_ms,
            } => write!(
                f,
                "frame {frame}: stage self-time {self_ms:.3} ms exceeds wall {wall_ms:.3} ms \
                 beyond skew tolerance"
            ),
            FleetError::RunIdMismatch { expected, found } => {
                write!(f, "run id mismatch: {expected:?} vs {found:?}")
            }
            FleetError::DuplicateShard { shard_id } => {
                write!(f, "duplicate shard id {shard_id}")
            }
            FleetError::NoShards => write!(f, "no shards to merge"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One scalar value in a flat JSONL record.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Scalar {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"k": scalar, …}` — the entire JSONL
/// vocabulary; no nesting). A deliberate micro-parser so `o2o-obs`
/// stays dependency-free on the read side too.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let b = line.as_bytes();
    let mut i = 0usize;
    let mut fields = Vec::new();

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\r' | b'\n') {
            *i += 1;
        }
    }

    fn parse_string(b: &[u8], i: &mut usize) -> Result<String, String> {
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *i));
        }
        *i += 1;
        let mut s = String::new();
        while *i < b.len() {
            match b[*i] {
                b'"' => {
                    *i += 1;
                    return Ok(s);
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*i + 1..*i + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                _ => {
                    // Multi-byte UTF-8 passes through byte-wise; the
                    // source is a &str so the bytes are valid.
                    let start = *i;
                    while *i < b.len() && b[*i] != b'"' && b[*i] != b'\\' {
                        *i += 1;
                    }
                    s.push_str(std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?);
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_scalar(b: &[u8], i: &mut usize) -> Result<Scalar, String> {
        match b.get(*i) {
            Some(b'"') => Ok(Scalar::Str(parse_string(b, i)?)),
            Some(b't') => {
                if b.get(*i..*i + 4) == Some(b"true") {
                    *i += 4;
                    Ok(Scalar::Bool(true))
                } else {
                    Err("bad literal".to_string())
                }
            }
            Some(b'f') => {
                if b.get(*i..*i + 5) == Some(b"false") {
                    *i += 5;
                    Ok(Scalar::Bool(false))
                } else {
                    Err("bad literal".to_string())
                }
            }
            Some(b'n') => {
                if b.get(*i..*i + 4) == Some(b"null") {
                    *i += 4;
                    Ok(Scalar::Null)
                } else {
                    Err("bad literal".to_string())
                }
            }
            Some(_) => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                let tok = std::str::from_utf8(&b[start..*i]).map_err(|e| e.to_string())?;
                tok.parse::<f64>()
                    .map(Scalar::Num)
                    .map_err(|_| format!("bad number {tok:?}"))
            }
            None => Err("unexpected end of line".to_string()),
        }
    }

    skip_ws(b, &mut i);
    if b.get(i) != Some(&b'{') {
        return Err("expected '{'".to_string());
    }
    i += 1;
    skip_ws(b, &mut i);
    if b.get(i) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(b, &mut i);
        let key = parse_string(b, &mut i)?;
        skip_ws(b, &mut i);
        if b.get(i) != Some(&b':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(b, &mut i);
        let value = parse_scalar(b, &mut i)?;
        fields.push((key, value));
        skip_ws(b, &mut i);
        match b.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {
                i += 1;
                skip_ws(b, &mut i);
                if i != b.len() {
                    return Err("trailing bytes after object".to_string());
                }
                return Ok(fields);
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

fn field<'a>(fields: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn req_u64(fields: &[(String, Scalar)], key: &str) -> Result<u64, String> {
    field(fields, key)
        .and_then(Scalar::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn req_f64(fields: &[(String, Scalar)], key: &str) -> Result<f64, String> {
    match field(fields, key) {
        Some(Scalar::Null) => Ok(f64::NAN), // non-finite values render as null
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("non-numeric field {key:?}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn req_str(fields: &[(String, Scalar)], key: &str) -> Result<String, String> {
    field(fields, key)
        .and_then(Scalar::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

/// Parses and validates one child's JSONL stream from a reader. See
/// [`parse_shard_str`] for the in-memory variant and the list of
/// validations applied.
///
/// # Errors
///
/// Any I/O failure is surfaced as [`FleetError::Parse`] on the
/// offending line; all structural problems map to the corresponding
/// [`FleetError`] variant.
pub fn parse_shard<R: BufRead>(
    reader: R,
    opts: &FleetOptions,
) -> Result<ShardTelemetry, FleetError> {
    let mut parser = ShardParser::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| FleetError::Parse {
            line: idx + 1,
            message: e.to_string(),
        })?;
        parser.line(idx + 1, &line)?;
    }
    parser.finish(opts)
}

/// Parses and validates one child's JSONL stream held in memory.
///
/// Validations: schema-stamped header first ([`FleetError::MissingHeader`] /
/// [`FleetError::UnknownSchema`]), every `span_start` balanced by a
/// `span_end` ([`FleetError::SpanImbalance`]), and per-frame stage
/// self-time within the frame wall-clock up to the skew tolerance
/// ([`FleetError::SelfExceedsWall`]).
///
/// # Errors
///
/// See [`FleetError`].
pub fn parse_shard_str(text: &str, opts: &FleetOptions) -> Result<ShardTelemetry, FleetError> {
    let mut parser = ShardParser::new();
    for (idx, line) in text.lines().enumerate() {
        parser.line(idx + 1, line)?;
    }
    parser.finish(opts)
}

/// Streaming single-shard parser state.
struct ShardParser {
    meta: Option<FleetMeta>,
    saw_any_line: bool,
    open_spans: BTreeMap<u64, usize>,
    span_starts: u64,
    span_ends: u64,
    open_frame: Option<OpenFrame>,
    breakdown: StageBreakdown,
    slo_events: Vec<SloLine>,
}

struct OpenFrame {
    frame: u64,
    stage_self_ms: BTreeMap<String, f64>,
    counter_deltas: BTreeMap<String, u64>,
}

impl ShardParser {
    fn new() -> Self {
        ShardParser {
            meta: None,
            saw_any_line: false,
            open_spans: BTreeMap::new(),
            span_starts: 0,
            span_ends: 0,
            open_frame: None,
            breakdown: StageBreakdown::new(),
            slo_events: Vec::new(),
        }
    }

    fn line(&mut self, line_no: usize, line: &str) -> Result<(), FleetError> {
        if line.trim().is_empty() {
            return Ok(());
        }
        let fields = parse_flat_object(line).map_err(|message| FleetError::Parse {
            line: line_no,
            message,
        })?;
        let wrap = |message: String| FleetError::Parse {
            line: line_no,
            message,
        };
        let ty = req_str(&fields, "type").map_err(wrap)?;

        if !self.saw_any_line {
            self.saw_any_line = true;
            if ty != "meta" {
                return Err(FleetError::MissingHeader);
            }
            let version = req_u64(&fields, "schema_version").map_err(wrap)?;
            if version != u64::from(SCHEMA_VERSION) {
                return Err(FleetError::UnknownSchema { found: version });
            }
            self.meta = Some(FleetMeta {
                run_id: field(&fields, "run_id")
                    .and_then(Scalar::as_str)
                    .unwrap_or_default()
                    .to_string(),
                shard_id: field(&fields, "shard_id")
                    .and_then(Scalar::as_u64)
                    .unwrap_or(0) as u32,
                pid: field(&fields, "pid").and_then(Scalar::as_u64).unwrap_or(0) as u32,
                seed: field(&fields, "seed").and_then(Scalar::as_u64).unwrap_or(0),
                git: field(&fields, "git")
                    .and_then(Scalar::as_str)
                    .map(str::to_string),
            });
            return Ok(());
        }

        match ty.as_str() {
            "meta" => Err(wrap("duplicate meta header".to_string())),
            "frame_start" => {
                let frame = req_u64(&fields, "frame").map_err(wrap)?;
                self.open_frame = Some(OpenFrame {
                    frame,
                    stage_self_ms: BTreeMap::new(),
                    counter_deltas: BTreeMap::new(),
                });
                Ok(())
            }
            "frame_end" => {
                let frame = req_u64(&fields, "frame").map_err(wrap)?;
                let wall_ms = req_f64(&fields, "wall_ms").map_err(wrap)?;
                let open = self.open_frame.take().ok_or_else(|| {
                    wrap(format!("frame_end {frame} without matching frame_start"))
                })?;
                if open.frame != frame {
                    return Err(wrap(format!(
                        "frame_end {frame} closes frame_start {}",
                        open.frame
                    )));
                }
                self.breakdown.push(FrameStats {
                    frame,
                    wall_ms,
                    stages: open.stage_self_ms.into_iter().collect(),
                    counters: open.counter_deltas.into_iter().collect(),
                });
                Ok(())
            }
            "span_start" => {
                let id = req_u64(&fields, "id").map_err(wrap)?;
                self.span_starts += 1;
                self.open_spans.insert(id, line_no);
                Ok(())
            }
            "span_end" => {
                let id = req_u64(&fields, "id").map_err(wrap)?;
                self.span_ends += 1;
                if self.open_spans.remove(&id).is_none() {
                    return Err(FleetError::SpanImbalance {
                        message: format!("span_end id {id} (line {line_no}) has no open start"),
                    });
                }
                let name = req_str(&fields, "name").map_err(wrap)?;
                let self_ms = req_f64(&fields, "self_ms").map_err(wrap)?;
                let frame = field(&fields, "frame").and_then(Scalar::as_u64);
                if let (Some(open), Some(frame)) = (self.open_frame.as_mut(), frame) {
                    if open.frame == frame && self_ms.is_finite() {
                        *open.stage_self_ms.entry(name).or_insert(0.0) += self_ms;
                    }
                }
                Ok(())
            }
            "counter" => {
                let delta = req_u64(&fields, "delta").map_err(wrap)?;
                let name = req_str(&fields, "name").map_err(wrap)?;
                let frame = field(&fields, "frame").and_then(Scalar::as_u64);
                if let (Some(open), Some(frame)) = (self.open_frame.as_mut(), frame) {
                    if open.frame == frame {
                        *open.counter_deltas.entry(name).or_insert(0) += delta;
                    }
                }
                Ok(())
            }
            "gauge" | "histogram" => Ok(()),
            "slo" => {
                self.slo_events.push(SloLine {
                    frame: req_u64(&fields, "frame").map_err(wrap)?,
                    kind: req_str(&fields, "kind").map_err(wrap)?,
                    spec: req_str(&fields, "spec").map_err(wrap)?,
                    metric: req_str(&fields, "metric").map_err(wrap)?,
                    value: req_f64(&fields, "value").map_err(wrap)?,
                    threshold: req_f64(&fields, "threshold").map_err(wrap)?,
                    rung: field(&fields, "rung")
                        .and_then(Scalar::as_str)
                        .map(str::to_string),
                });
                Ok(())
            }
            other => Err(wrap(format!("unknown record type {other:?}"))),
        }
    }

    fn finish(self, opts: &FleetOptions) -> Result<ShardTelemetry, FleetError> {
        if !self.saw_any_line {
            return Err(FleetError::Empty);
        }
        let meta = self.meta.ok_or(FleetError::MissingHeader)?;
        if !self.open_spans.is_empty() {
            let (&id, &line) = self.open_spans.iter().next().expect("non-empty");
            return Err(FleetError::SpanImbalance {
                message: format!(
                    "{} span(s) never closed, first: id {id} opened at line {line}",
                    self.open_spans.len()
                ),
            });
        }
        for fs in &self.breakdown.frames {
            let self_ms = fs.total_stage_ms();
            let limit = fs.wall_ms * (1.0 + opts.skew_tolerance_pct / 100.0) + opts.skew_slack_ms;
            if self_ms > limit {
                return Err(FleetError::SelfExceedsWall {
                    frame: fs.frame,
                    self_ms,
                    wall_ms: fs.wall_ms,
                });
            }
        }
        Ok(ShardTelemetry {
            meta,
            breakdown: self.breakdown,
            slo_events: self.slo_events,
            span_starts: self.span_starts,
            span_ends: self.span_ends,
        })
    }
}

/// Merges N validated shards into one fleet-wide summary.
///
/// Shards must share a run id and carry distinct shard ids; the result
/// is sorted by shard id, and fleet totals are exact sums of the
/// per-shard totals (asserted by construction — the reconciliation
/// tests re-derive both sides independently).
///
/// # Errors
///
/// [`FleetError::NoShards`], [`FleetError::RunIdMismatch`],
/// [`FleetError::DuplicateShard`].
pub fn merge(mut shards: Vec<ShardTelemetry>) -> Result<FleetSummary, FleetError> {
    if shards.is_empty() {
        return Err(FleetError::NoShards);
    }
    shards.sort_by_key(|s| s.meta.shard_id);
    let run_id = shards[0].meta.run_id.clone();
    for pair in shards.windows(2) {
        if pair[1].meta.run_id != run_id {
            return Err(FleetError::RunIdMismatch {
                expected: run_id,
                found: pair[1].meta.run_id.clone(),
            });
        }
        if pair[1].meta.shard_id == pair[0].meta.shard_id {
            return Err(FleetError::DuplicateShard {
                shard_id: pair[0].meta.shard_id,
            });
        }
    }

    let mut stage_totals: BTreeMap<String, f64> = BTreeMap::new();
    let mut counter_totals: BTreeMap<String, u64> = BTreeMap::new();
    let mut latency = Histogram::new();
    let mut frames = 0u64;
    let mut wall_ms = 0.0f64;
    let mut total_self_ms = 0.0f64;
    let mut summaries = Vec::with_capacity(shards.len());

    for shard in shards {
        let shard_stages = shard.breakdown.stage_totals();
        let shard_counters = shard.breakdown.counter_totals();
        for (name, ms) in &shard_stages {
            *stage_totals.entry(name.clone()).or_insert(0.0) += ms;
        }
        for (name, n) in &shard_counters {
            *counter_totals.entry(name.clone()).or_insert(0) += n;
        }
        for fs in &shard.breakdown.frames {
            latency.observe(fs.wall_ms);
        }
        let shard_wall = shard.wall_ms();
        let shard_self = shard.breakdown.total_self_ms();
        frames += shard.frames();
        wall_ms += shard_wall;
        total_self_ms += shard_self;
        let breaches = shard
            .slo_events
            .iter()
            .filter(|e| e.kind == "breach")
            .count() as u64;
        let recoveries = shard.slo_events.len() as u64 - breaches;
        summaries.push(ShardSummary {
            frames: shard.frames(),
            wall_ms: shard_wall,
            total_self_ms: shard_self,
            stage_totals: shard_stages,
            counter_totals: shard_counters,
            breaches,
            recoveries,
            slo_events: shard.slo_events,
            meta: shard.meta,
        });
    }

    Ok(FleetSummary {
        run_id,
        schema_version: SCHEMA_VERSION,
        shards: summaries,
        frames,
        wall_ms,
        total_self_ms,
        stage_totals: stage_totals.into_iter().collect(),
        counter_totals: counter_totals.into_iter().collect(),
        latency: latency.snapshot(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonlSink, Recorder};

    /// Drives a recorder through `frames` frames with spans, counters
    /// and an SLO monitor, writing a manifest into a shared buffer.
    fn synth_stream(shard_id: u32, frames: u64, slow: bool) -> String {
        let (sink, buf) = JsonlSink::shared();
        {
            let sink = sink.with_meta(FleetMeta::new("run-7", shard_id, 42 + u64::from(shard_id)));
            let rec = Recorder::with_sink(Box::new(sink));
            let mut mon = crate::SloMonitor::new(vec![crate::SloSpec::max(
                "p95",
                crate::SloMetric::FrameP95Ms,
                1.0,
                2,
            )]);
            for f in 0..frames {
                rec.begin_frame(f);
                {
                    let _outer = rec.span("policy_dispatch");
                    let _inner = rec.span("deferred_acceptance");
                }
                rec.add("match.proposals", 3 + u64::from(shard_id));
                let dispatch_ms = if slow { 50.0 } else { 0.2 };
                rec.observe("frame.dispatch_ms", dispatch_ms);
                for ev in mon.on_frame(&crate::FrameObservation {
                    frame: f,
                    dispatch_ms,
                    served: 1,
                    arrivals: 1,
                    rung: slow.then_some("greedy-nearest"),
                    ckpt_ms: 0.0,
                }) {
                    rec.slo_event(ev);
                }
                rec.end_frame();
            }
            rec.flush();
        }
        buf.contents()
    }

    #[test]
    fn shard_roundtrip_reconstructs_frames_and_meta() {
        let text = synth_stream(3, 5, false);
        let shard = parse_shard_str(&text, &FleetOptions::default()).unwrap();
        assert_eq!(shard.meta.run_id, "run-7");
        assert_eq!(shard.meta.shard_id, 3);
        assert_eq!(shard.meta.seed, 45);
        assert_eq!(shard.meta.pid, std::process::id());
        assert_eq!(shard.frames(), 5);
        assert_eq!(shard.span_starts, shard.span_ends);
        assert_eq!(shard.span_starts, 10, "2 spans per frame x 5 frames");
        assert_eq!(shard.breakdown.counter_total("match.proposals"), 30);
        let stages: Vec<String> = shard
            .breakdown
            .stage_totals()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(stages, vec!["deferred_acceptance", "policy_dispatch"]);
    }

    #[test]
    fn merge_reconciles_exactly_with_individual_shards() {
        let streams: Vec<String> = (0..3)
            .map(|s| synth_stream(s, 4 + u64::from(s), false))
            .collect();
        let shards: Vec<ShardTelemetry> = streams
            .iter()
            .map(|t| parse_shard_str(t, &FleetOptions::default()).unwrap())
            .collect();
        let expect_frames: u64 = shards.iter().map(ShardTelemetry::frames).sum();
        let expect_self: f64 = shards.iter().map(|s| s.breakdown.total_self_ms()).sum();
        let expect_props: u64 = shards
            .iter()
            .map(|s| s.breakdown.counter_total("match.proposals"))
            .sum();

        let fleet = merge(shards).unwrap();
        assert_eq!(fleet.run_id, "run-7");
        assert_eq!(fleet.frames, expect_frames);
        assert!((fleet.total_self_ms - expect_self).abs() < 1e-9);
        assert_eq!(
            fleet
                .counter_totals
                .iter()
                .find(|(n, _)| n == "match.proposals")
                .map(|(_, v)| *v),
            Some(expect_props)
        );
        // Per-shard attribution survives the merge, sorted by shard id.
        assert_eq!(fleet.shards.len(), 3);
        for (i, s) in fleet.shards.iter().enumerate() {
            assert_eq!(s.meta.shard_id, i as u32);
            assert_eq!(s.frames, 4 + i as u64);
        }
        // The fleet latency histogram saw every frame.
        assert_eq!(fleet.latency.count, expect_frames);
    }

    #[test]
    fn slo_breaches_survive_the_roundtrip_with_rung() {
        let text = synth_stream(0, 4, true);
        let shard = parse_shard_str(&text, &FleetOptions::default()).unwrap();
        assert!(!shard.slo_events.is_empty());
        let breach = &shard.slo_events[0];
        assert_eq!(breach.kind, "breach");
        assert_eq!(breach.spec, "p95");
        assert_eq!(breach.metric, "frame_p95_ms");
        assert_eq!(breach.rung.as_deref(), Some("greedy-nearest"));
        let fleet = merge(vec![shard]).unwrap();
        assert_eq!(fleet.shards[0].breaches, 1);
    }

    #[test]
    fn missing_header_and_unknown_schema_are_rejected() {
        let no_header = "{\"type\":\"frame_start\",\"frame\":0}\n";
        assert_eq!(
            parse_shard_str(no_header, &FleetOptions::default()),
            Err(FleetError::MissingHeader)
        );
        let future = "{\"type\":\"meta\",\"schema_version\":99}\n";
        assert_eq!(
            parse_shard_str(future, &FleetOptions::default()),
            Err(FleetError::UnknownSchema { found: 99 })
        );
        assert_eq!(
            parse_shard_str("", &FleetOptions::default()),
            Err(FleetError::Empty)
        );
    }

    #[test]
    fn span_imbalance_is_detected() {
        let mut text = String::from("{\"type\":\"meta\",\"schema_version\":2}\n");
        text.push_str(
            "{\"type\":\"span_start\",\"id\":0,\"parent\":null,\"name\":\"a\",\"frame\":null}\n",
        );
        let err = parse_shard_str(&text, &FleetOptions::default()).unwrap_err();
        assert!(matches!(err, FleetError::SpanImbalance { .. }), "{err}");
        let mut text = String::from("{\"type\":\"meta\",\"schema_version\":2}\n");
        text.push_str(
            "{\"type\":\"span_end\",\"id\":9,\"name\":\"a\",\"total_ms\":1.0,\"self_ms\":1.0,\"frame\":null}\n",
        );
        let err = parse_shard_str(&text, &FleetOptions::default()).unwrap_err();
        assert!(matches!(err, FleetError::SpanImbalance { .. }), "{err}");
    }

    #[test]
    fn self_exceeding_wall_beyond_tolerance_is_rejected() {
        let mut text = String::from("{\"type\":\"meta\",\"schema_version\":2}\n");
        text.push_str("{\"type\":\"frame_start\",\"frame\":0}\n");
        text.push_str(
            "{\"type\":\"span_start\",\"id\":0,\"parent\":null,\"name\":\"a\",\"frame\":0}\n",
        );
        text.push_str(
            "{\"type\":\"span_end\",\"id\":0,\"name\":\"a\",\"total_ms\":9.0,\"self_ms\":9.0,\"frame\":0}\n",
        );
        text.push_str("{\"type\":\"frame_end\",\"frame\":0,\"wall_ms\":1.0}\n");
        let err = parse_shard_str(&text, &FleetOptions::default()).unwrap_err();
        assert!(
            matches!(err, FleetError::SelfExceedsWall { frame: 0, .. }),
            "{err}"
        );
        // A generous tolerance accepts the same stream.
        let lax = FleetOptions {
            skew_tolerance_pct: 1000.0,
            skew_slack_ms: 0.5,
        };
        assert!(parse_shard_str(&text, &lax).is_ok());
    }

    #[test]
    fn merge_rejects_mixed_runs_and_duplicate_shards() {
        let a = parse_shard_str(&synth_stream(0, 2, false), &FleetOptions::default()).unwrap();
        let mut b = parse_shard_str(&synth_stream(1, 2, false), &FleetOptions::default()).unwrap();
        b.meta.run_id = "other-run".to_string();
        assert!(matches!(
            merge(vec![a.clone(), b]),
            Err(FleetError::RunIdMismatch { .. })
        ));
        let dup = a.clone();
        assert_eq!(
            merge(vec![a.clone(), dup]),
            Err(FleetError::DuplicateShard { shard_id: 0 })
        );
        assert_eq!(merge(Vec::new()), Err(FleetError::NoShards));
    }
}
