//! Experiment harness regenerating the paper's figures.
//!
//! One binary per figure (see `src/bin/`): each builds the figure's trace,
//! runs every algorithm the figure compares, and prints the same rows or
//! series the paper plots. Criterion micro-benchmarks live in `benches/`.
//!
//! Figures are reproduced at a configurable `--scale`: the request volume
//! *and* the fleet are multiplied by the factor, preserving the
//! supply/demand ratio that drives the paper's results (absolute distance
//! magnitudes grow as density falls — see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_sim::{policy, Cdf, DispatchPolicy, SimConfig, SimReport, Simulator};
use o2o_trace::Trace;

/// Common command-line options of the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOpts {
    /// Multiplier applied to both request volume and fleet size.
    pub scale: f64,
    /// Seed for the synthetic trace.
    pub seed: u64,
    /// Interest-model parameters (α, β, dummy thresholds, θ).
    pub params: PreferenceParams,
}

impl ExperimentOpts {
    /// Parses `--scale <f>`, `--seed <n>`, `--alpha <f>`, `--beta <f>`,
    /// `--taxi-threshold <f>`, `--passenger-threshold <f>` and
    /// `--theta <f>` from `std::env::args`; defaults are `default_scale`,
    /// seed 42 and [`PreferenceParams::paper`].
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn from_args(default_scale: f64) -> Self {
        Self::from_args_with(default_scale, PreferenceParams::paper())
    }

    /// Like [`ExperimentOpts::from_args`] but with figure-specific default
    /// parameters (e.g. the NYC figures default to a wider driver
    /// threshold because NYC pick-up distances are larger — see
    /// `EXPERIMENTS.md`).
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn from_args_with(default_scale: f64, default_params: PreferenceParams) -> Self {
        let mut opts = ExperimentOpts {
            scale: default_scale,
            seed: 42,
            params: default_params,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let take = |i: usize, what: &str| -> f64 {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("usage: {what} <number>"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => opts.scale = take(i, "--scale"),
                "--seed" => opts.seed = take(i, "--seed") as u64,
                "--alpha" => opts.params.alpha = take(i, "--alpha"),
                "--beta" => opts.params.beta = take(i, "--beta"),
                "--taxi-threshold" => opts.params.taxi_threshold = take(i, "--taxi-threshold"),
                "--passenger-threshold" => {
                    opts.params.passenger_threshold = take(i, "--passenger-threshold");
                }
                "--theta" => opts.params.detour_threshold = take(i, "--theta"),
                other => panic!(
                    "unknown argument {other}; supported: --scale --seed --alpha --beta \
                     --taxi-threshold --passenger-threshold --theta"
                ),
            }
            i += 2;
        }
        opts.params.validate().expect("invalid parameters");
        opts
    }

    /// Scales a fleet size, keeping at least one taxi.
    #[must_use]
    pub fn scaled_taxis(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(1)
    }
}

/// The algorithms a figure compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Algorithm 1, passenger-optimal stable matching.
    NstdP,
    /// Taxi-optimal stable matching (Algorithms 1+2).
    NstdT,
    /// Greedy nearest-taxi baseline.
    Near,
    /// Minimum-cost bipartite matching baseline.
    Pair,
    /// Bottleneck matching baseline.
    Mini,
    /// Algorithm 3, passenger-optimal (sharing).
    StdP,
    /// Algorithm 3, taxi-optimal (sharing).
    StdT,
    /// Spatio-temporal-index insertion baseline (sharing).
    Raii,
    /// TSP-insertion baseline (sharing).
    Sarp,
    /// ILP-heuristic baseline (sharing).
    Lin,
}

impl PolicyKind {
    /// The paper's non-sharing line-up (Figs. 4–7).
    pub const NON_SHARING: [PolicyKind; 5] = [
        PolicyKind::NstdP,
        PolicyKind::NstdT,
        PolicyKind::Near,
        PolicyKind::Pair,
        PolicyKind::Mini,
    ];

    /// The paper's sharing line-up (Figs. 8–9).
    pub const SHARING: [PolicyKind; 5] = [
        PolicyKind::StdP,
        PolicyKind::StdT,
        PolicyKind::Raii,
        PolicyKind::Sarp,
        PolicyKind::Lin,
    ];

    /// Builds the policy over the Euclidean metric.
    #[must_use]
    pub fn build(&self, params: PreferenceParams) -> Box<dyn DispatchPolicy + Send> {
        match self {
            PolicyKind::NstdP => Box::new(policy::nstd_p(Euclidean, params)),
            PolicyKind::NstdT => Box::new(policy::nstd_t(Euclidean, params)),
            PolicyKind::Near => Box::new(policy::near(Euclidean, params)),
            PolicyKind::Pair => Box::new(policy::pair(Euclidean, params)),
            PolicyKind::Mini => Box::new(policy::mini(Euclidean, params)),
            PolicyKind::StdP => Box::new(policy::std_p(Euclidean, params)),
            PolicyKind::StdT => Box::new(policy::std_t(Euclidean, params)),
            PolicyKind::Raii => Box::new(policy::raii(Euclidean, params)),
            PolicyKind::Sarp => Box::new(policy::sarp(Euclidean, params)),
            PolicyKind::Lin => Box::new(policy::lin(Euclidean, params)),
        }
    }
}

/// Runs every policy over the trace, in parallel (one thread per policy).
#[must_use]
pub fn run_policies(
    trace: &Trace,
    kinds: &[PolicyKind],
    params: PreferenceParams,
    config: SimConfig,
) -> Vec<SimReport> {
    let mut out: Vec<Option<SimReport>> = (0..kinds.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, kind) in out.iter_mut().zip(kinds.iter()) {
            scope.spawn(move |_| {
                let mut policy = kind.build(params);
                let sim = Simulator::new(config);
                *slot = Some(sim.run(trace, &mut policy));
            });
        }
    })
    .expect("policy thread panicked");
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Prints a CDF comparison table: one row per grid value, one column per
/// report — the textual form of the paper's CDF figures.
pub fn print_cdf_table(title: &str, unit: &str, reports: &[SimReport], cdfs: &[Cdf]) {
    assert_eq!(reports.len(), cdfs.len());
    println!("\n=== {title} ===");
    print!("{:>12}", format!("{unit}"));
    for r in reports {
        print!("{:>10}", r.policy);
    }
    println!();
    // Shared grid across policies so columns are comparable.
    let hi = cdfs.iter().map(Cdf::max).fold(0.0f64, f64::max);
    let grid: Vec<f64> = if hi <= 0.0 {
        vec![0.0]
    } else {
        (0..=12).map(|i| hi * i as f64 / 12.0).collect()
    };
    for x in grid {
        print!("{x:>12.2}");
        for cdf in cdfs {
            print!("{:>10.3}", cdf.fraction_at_most(x));
        }
        println!();
    }
}

/// Prints the three-metric summary block the figure captions describe.
pub fn print_summary(reports: &[SimReport]) {
    println!(
        "\n{:>10} {:>8} {:>9} {:>12} {:>8} {:>12} {:>10} {:>12}",
        "policy",
        "served",
        "unserved",
        "delay(min)",
        "<=1min",
        "pass-dis",
        "taxi-dis",
        "share-rate"
    );
    for r in reports {
        println!(
            "{:>10} {:>8} {:>9} {:>12.3} {:>8.3} {:>12.3} {:>10.3} {:>12.3}",
            r.policy,
            r.served,
            r.unserved_at_end,
            r.avg_delay_min(),
            r.delay_cdf().fraction_at_most(1.0),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.sharing_rate(),
        );
    }
}

/// Prints an hour-of-day series table (Fig. 7's shape).
pub fn print_hourly_table(title: &str, reports: &[SimReport], series: &[[f64; 24]]) {
    assert_eq!(reports.len(), series.len());
    println!("\n=== {title} ===");
    print!("{:>6}", "hour");
    for r in reports {
        print!("{:>10}", r.policy);
    }
    println!();
    for h in 0..24 {
        print!("{h:>6}");
        for s in series {
            print!("{:>10.3}", s[h]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_trace::boston_september_2012;

    #[test]
    fn scaled_taxis_keeps_minimum() {
        let o = ExperimentOpts {
            scale: 0.0001,
            seed: 1,
            params: PreferenceParams::paper(),
        };
        assert_eq!(o.scaled_taxis(700), 1);
        let o = ExperimentOpts {
            scale: 0.5,
            seed: 1,
            params: PreferenceParams::paper(),
        };
        assert_eq!(o.scaled_taxis(200), 100);
    }

    #[test]
    fn run_policies_returns_one_report_per_kind() {
        let trace = boston_september_2012(0.001).taxis(5).generate(3);
        let reports = run_policies(
            &trace,
            &[PolicyKind::Near, PolicyKind::NstdP],
            PreferenceParams::default(),
            SimConfig::default(),
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].policy, "Near");
        assert_eq!(reports[1].policy, "NSTD-P");
        for r in &reports {
            assert_eq!(r.served + r.unserved_at_end, trace.requests.len());
        }
    }

    #[test]
    fn all_policy_kinds_build() {
        for k in PolicyKind::NON_SHARING.iter().chain(&PolicyKind::SHARING) {
            let _ = k.build(PreferenceParams::default());
        }
    }
}
