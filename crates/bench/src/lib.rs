//! Experiment harness regenerating the paper's figures.
//!
//! One binary per figure (see `src/bin/`): each builds the figure's trace,
//! runs every algorithm the figure compares, and prints the same rows or
//! series the paper plots. Criterion micro-benchmarks live in `benches/`.
//!
//! Figures are reproduced at a configurable `--scale`: the request volume
//! *and* the fleet are multiplied by the factor, preserving the
//! supply/demand ratio that drives the paper's results (absolute distance
//! magnitudes grow as density falls — see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use o2o_core::{NonSharingDispatcher, PreferenceParams, SharingDispatcher};
use o2o_geo::Euclidean;
use o2o_par::{par_run, Parallelism};
use o2o_sim::{policy, Cdf, DispatchPolicy, SimConfig, SimReport, Simulator};
use o2o_trace::Trace;

pub mod gates;
pub mod json;
pub mod regress;
pub mod supervisor;
pub use gates::{Gate, OBS_MAX_OVERHEAD_PCT, RECOVERY_OVERHEAD_MAX, REGRESS_MAX_PCT};
pub use json::{
    bench_envelope, emit_bench_json, emit_policies_json, fleet_json, policy_json, results_dir,
    stage_breakdown_json, write_bench_json, Json,
};
pub use regress::{
    compare_docs, compare_results, snapshot_baselines, CompareOptions, Delta, Direction,
};
pub use supervisor::{
    merge_shard_files, merge_shards, supervise, supervise_one, write_fleet_json, ChildSpec,
    RunStatus, RunVerdict, SupervisorPolicy,
};

/// Common command-line options of the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentOpts {
    /// Multiplier applied to both request volume and fleet size.
    pub scale: f64,
    /// Seed for the synthetic trace.
    pub seed: u64,
    /// Interest-model parameters (α, β, dummy thresholds, θ).
    pub params: PreferenceParams,
}

impl ExperimentOpts {
    /// Parses `--scale <f>`, `--seed <n>`, `--alpha <f>`, `--beta <f>`,
    /// `--taxi-threshold <f>`, `--passenger-threshold <f>` and
    /// `--theta <f>` from `std::env::args`; defaults are `default_scale`,
    /// seed 42 and [`PreferenceParams::paper`].
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn from_args(default_scale: f64) -> Self {
        Self::from_args_with(default_scale, PreferenceParams::paper())
    }

    /// Like [`ExperimentOpts::from_args`] but with figure-specific default
    /// parameters (e.g. the NYC figures default to a wider driver
    /// threshold because NYC pick-up distances are larger — see
    /// `EXPERIMENTS.md`).
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments.
    #[must_use]
    pub fn from_args_with(default_scale: f64, default_params: PreferenceParams) -> Self {
        let mut opts = ExperimentOpts {
            scale: default_scale,
            seed: 42,
            params: default_params,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let take = |i: usize, what: &str| -> f64 {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("usage: {what} <number>"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => opts.scale = take(i, "--scale"),
                "--seed" => opts.seed = take(i, "--seed") as u64,
                "--alpha" => opts.params.alpha = take(i, "--alpha"),
                "--beta" => opts.params.beta = take(i, "--beta"),
                "--taxi-threshold" => opts.params.taxi_threshold = take(i, "--taxi-threshold"),
                "--passenger-threshold" => {
                    opts.params.passenger_threshold = take(i, "--passenger-threshold");
                }
                "--theta" => opts.params.detour_threshold = take(i, "--theta"),
                other => panic!(
                    "unknown argument {other}; supported: --scale --seed --alpha --beta \
                     --taxi-threshold --passenger-threshold --theta"
                ),
            }
            i += 2;
        }
        opts.params.validate().expect("invalid parameters");
        opts
    }

    /// Scales a fleet size, keeping at least one taxi.
    #[must_use]
    pub fn scaled_taxis(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(1)
    }
}

/// The algorithms a figure compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Algorithm 1, passenger-optimal stable matching.
    NstdP,
    /// Taxi-optimal stable matching (Algorithms 1+2).
    NstdT,
    /// Greedy nearest-taxi baseline.
    Near,
    /// Minimum-cost bipartite matching baseline.
    Pair,
    /// Bottleneck matching baseline.
    Mini,
    /// Algorithm 3, passenger-optimal (sharing).
    StdP,
    /// Algorithm 3, taxi-optimal (sharing).
    StdT,
    /// Spatio-temporal-index insertion baseline (sharing).
    Raii,
    /// TSP-insertion baseline (sharing).
    Sarp,
    /// ILP-heuristic baseline (sharing).
    Lin,
}

impl PolicyKind {
    /// The paper's non-sharing line-up (Figs. 4–7).
    pub const NON_SHARING: [PolicyKind; 5] = [
        PolicyKind::NstdP,
        PolicyKind::NstdT,
        PolicyKind::Near,
        PolicyKind::Pair,
        PolicyKind::Mini,
    ];

    /// The paper's sharing line-up (Figs. 8–9).
    pub const SHARING: [PolicyKind; 5] = [
        PolicyKind::StdP,
        PolicyKind::StdT,
        PolicyKind::Raii,
        PolicyKind::Sarp,
        PolicyKind::Lin,
    ];

    /// Builds the policy over the Euclidean metric (single-threaded,
    /// uncached — the reference configuration).
    #[must_use]
    pub fn build(&self, params: PreferenceParams) -> Box<dyn DispatchPolicy + Send> {
        self.build_parallel(params, Parallelism::sequential())
    }

    /// Builds the policy with its internal pipeline stages running on
    /// `par` threads, and — for the paper's sharing algorithms — its
    /// metric wrapped in a per-frame distance cache. Results are
    /// bit-identical to [`PolicyKind::build`] for every thread count;
    /// only wall-clock time changes.
    #[must_use]
    pub fn build_parallel(
        &self,
        params: PreferenceParams,
        par: Parallelism,
    ) -> Box<dyn DispatchPolicy + Send> {
        use o2o_sim::policy::{NstdPPolicy, NstdTPolicy, StdPPolicy, StdTPolicy};
        match self {
            PolicyKind::NstdP => Box::new(NstdPPolicy::from_dispatcher(
                NonSharingDispatcher::new(Euclidean, params).with_parallelism(par),
            )),
            PolicyKind::NstdT => Box::new(NstdTPolicy::from_dispatcher(
                NonSharingDispatcher::new(Euclidean, params).with_parallelism(par),
            )),
            PolicyKind::Near => Box::new(policy::near(Euclidean, params)),
            PolicyKind::Pair => Box::new(policy::pair(Euclidean, params)),
            PolicyKind::Mini => Box::new(policy::mini(Euclidean, params)),
            PolicyKind::StdP => Box::new(policy::cached(Euclidean, |metric| {
                StdPPolicy::from_dispatcher(
                    SharingDispatcher::new(metric, params).with_parallelism(par),
                )
            })),
            PolicyKind::StdT => Box::new(policy::cached(Euclidean, |metric| {
                StdTPolicy::from_dispatcher(
                    SharingDispatcher::new(metric, params).with_parallelism(par),
                )
            })),
            PolicyKind::Raii => Box::new(policy::raii(Euclidean, params)),
            PolicyKind::Sarp => Box::new(policy::sarp(Euclidean, params)),
            PolicyKind::Lin => Box::new(policy::lin(Euclidean, params)),
        }
    }
}

/// Runs every policy over the trace, one job per policy on up to
/// [`Parallelism::auto`] threads. Each policy's internal stages stay
/// sequential here (the parallelism budget is spent across policies);
/// the sharing policies still get their per-frame distance cache.
/// Reports come back in `kinds` order.
#[must_use]
pub fn run_policies(
    trace: &Trace,
    kinds: &[PolicyKind],
    params: PreferenceParams,
    config: SimConfig,
) -> Vec<SimReport> {
    let jobs: Vec<_> = kinds
        .iter()
        .map(|kind| {
            move || {
                let mut policy = kind.build_parallel(params, Parallelism::sequential());
                let sim = Simulator::new(config).with_parallelism(Parallelism::sequential());
                sim.run(trace, &mut policy)
            }
        })
        .collect();
    par_run(Parallelism::auto(), jobs)
}

/// Runs independent sweep points in parallel (one job per point, up to
/// [`Parallelism::auto`] threads), returning results in input order.
/// Every point is an independent computation, so the sweep's output is
/// identical to running the loop sequentially.
#[must_use]
pub fn run_sweep<T, U, F>(points: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let f = &f;
    par_run(
        Parallelism::auto(),
        points.into_iter().map(|p| move || f(p)).collect::<Vec<_>>(),
    )
}

/// Prints a CDF comparison table: one row per grid value, one column per
/// report — the textual form of the paper's CDF figures.
pub fn print_cdf_table(title: &str, unit: &str, reports: &[SimReport], cdfs: &[Cdf]) {
    assert_eq!(reports.len(), cdfs.len());
    println!("\n=== {title} ===");
    print!("{:>12}", format!("{unit}"));
    for r in reports {
        print!("{:>10}", r.policy);
    }
    println!();
    // Shared grid across policies so columns are comparable.
    let hi = cdfs.iter().map(Cdf::max).fold(0.0f64, f64::max);
    let grid: Vec<f64> = if hi <= 0.0 {
        vec![0.0]
    } else {
        (0..=12).map(|i| hi * i as f64 / 12.0).collect()
    };
    for x in grid {
        print!("{x:>12.2}");
        for cdf in cdfs {
            print!("{:>10.3}", cdf.fraction_at_most(x));
        }
        println!();
    }
}

/// Prints the three-metric summary block the figure captions describe.
pub fn print_summary(reports: &[SimReport]) {
    println!(
        "\n{:>10} {:>8} {:>9} {:>12} {:>8} {:>12} {:>10} {:>12}",
        "policy",
        "served",
        "unserved",
        "delay(min)",
        "<=1min",
        "pass-dis",
        "taxi-dis",
        "share-rate"
    );
    for r in reports {
        println!(
            "{:>10} {:>8} {:>9} {:>12.3} {:>8.3} {:>12.3} {:>10.3} {:>12.3}",
            r.policy,
            r.served,
            r.unserved_at_end,
            r.avg_delay_min(),
            r.delay_cdf().fraction_at_most(1.0),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.sharing_rate(),
        );
    }
}

/// Prints an hour-of-day series table (Fig. 7's shape).
pub fn print_hourly_table(title: &str, reports: &[SimReport], series: &[[f64; 24]]) {
    assert_eq!(reports.len(), series.len());
    println!("\n=== {title} ===");
    print!("{:>6}", "hour");
    for r in reports {
        print!("{:>10}", r.policy);
    }
    println!();
    for h in 0..24 {
        print!("{h:>6}");
        for s in series {
            print!("{:>10.3}", s[h]);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o2o_trace::boston_september_2012;

    #[test]
    fn scaled_taxis_keeps_minimum() {
        let o = ExperimentOpts {
            scale: 0.0001,
            seed: 1,
            params: PreferenceParams::paper(),
        };
        assert_eq!(o.scaled_taxis(700), 1);
        let o = ExperimentOpts {
            scale: 0.5,
            seed: 1,
            params: PreferenceParams::paper(),
        };
        assert_eq!(o.scaled_taxis(200), 100);
    }

    #[test]
    fn run_policies_returns_one_report_per_kind() {
        let trace = boston_september_2012(0.001).taxis(5).generate(3);
        let reports = run_policies(
            &trace,
            &[PolicyKind::Near, PolicyKind::NstdP],
            PreferenceParams::default(),
            SimConfig::default(),
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].policy, "Near");
        assert_eq!(reports[1].policy, "NSTD-P");
        for r in &reports {
            assert_eq!(r.served + r.unserved_at_end, trace.requests.len());
        }
    }

    #[test]
    fn all_policy_kinds_build() {
        for k in PolicyKind::NON_SHARING.iter().chain(&PolicyKind::SHARING) {
            let _ = k.build(PreferenceParams::default());
            let _ = k.build_parallel(PreferenceParams::default(), Parallelism::fixed(3));
        }
    }

    #[test]
    fn parallel_build_matches_sequential_reports() {
        let trace = boston_september_2012(0.001).taxis(5).generate(9);
        for kind in [PolicyKind::NstdP, PolicyKind::StdP] {
            let mut seq = kind.build(PreferenceParams::default());
            let mut par = kind.build_parallel(PreferenceParams::default(), Parallelism::fixed(4));
            let sim = Simulator::new(SimConfig::default());
            let a = sim.run(&trace, &mut seq);
            let b = sim.run(&trace, &mut par);
            assert_eq!(a.delays_min, b.delays_min, "{kind:?}");
            assert_eq!(a.passenger_dissatisfaction, b.passenger_dissatisfaction);
            assert_eq!(a.taxi_dissatisfaction, b.taxi_dissatisfaction);
            assert_eq!(a.total_drive_km, b.total_drive_km);
        }
    }

    #[test]
    fn run_sweep_preserves_order() {
        let out = run_sweep((0..17).collect::<Vec<i32>>(), |x| x * x);
        assert_eq!(out, (0..17).map(|x| x * x).collect::<Vec<_>>());
    }
}
