//! Perf-regression gate: baseline snapshots and a noise-aware comparator.
//!
//! The figure binaries already measure defensively (interleaved runs,
//! best-of-K minima, on-CPU timers), so their `BENCH_*.json` files are
//! as stable as a shared machine allows. This module turns those files
//! into a regression gate:
//!
//! * [`snapshot_baselines`] copies the current `results/BENCH_*.json`
//!   set into `results/baselines/`, stamped with an environment
//!   fingerprint (`BASELINE_ENV.json`) so a comparison across different
//!   hardware is at least diagnosable.
//! * [`compare_docs`] walks a baseline and a current document together
//!   and compares every *directional* metric leaf — keys ending in
//!   `_ms` or `overhead_pct` are lower-is-better, keys containing
//!   `speedup` are higher-is-better; everything else (counts, digests,
//!   raw per-frame series) is identity data, not a timing, and is
//!   ignored. Array rows pair by their identifying field (`policy`,
//!   `interval`, `deadline_ms`, …) so reordered rows do not
//!   misattribute deltas.
//!
//! A delta only *fails* the gate when it is worse by more than
//! [`CompareOptions::max_pct`] percent **and** by more than
//! [`CompareOptions::abs_floor`] in the metric's own units — the
//! relative threshold catches real slowdowns, the absolute floor keeps
//! micro-benchmarks measured in fractions of a millisecond from tripping
//! the gate on scheduler noise. The percentage is overridable with
//! `O2O_REGRESS_MAX_PCT` (see [`crate::gates`]).

use crate::json::Json;
use std::path::{Path, PathBuf};

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller values are better (`*_ms`, `*overhead_pct`).
    LowerIsBetter,
    /// Larger values are better (`*speedup*`).
    HigherIsBetter,
}

/// The comparison direction of a metric key, or `None` for
/// non-directional data (counts, parameters, digests).
#[must_use]
pub fn metric_direction(key: &str) -> Option<Direction> {
    if key.contains("speedup") {
        Some(Direction::HigherIsBetter)
    } else if key.ends_with("_ms") || key.ends_with("overhead_pct") {
        Some(Direction::LowerIsBetter)
    } else {
        None
    }
}

/// Thresholds for [`compare_docs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareOptions {
    /// Relative change (percent, in the worse direction) beyond which a
    /// delta is a regression.
    pub max_pct: f64,
    /// Absolute change (metric units) a delta must also exceed — the
    /// noise floor for sub-millisecond metrics.
    pub abs_floor: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            max_pct: crate::gates::REGRESS_MAX_PCT.default,
            abs_floor: 0.5,
        }
    }
}

/// One compared metric leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Dotted path to the leaf, with array rows labelled by their
    /// identifying field (e.g. `policies[policy=NSTD-P].total_dispatch_ms`).
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed change in the *worse* direction, percent — positive means
    /// the current value is worse than the baseline.
    pub worse_pct: f64,
    /// Whether this delta fails the gate under the options used.
    pub regressed: bool,
}

/// Compares every directional metric of `current` against `baseline`.
/// Keys present on only one side are skipped (benches evolve); the
/// caller decides whether an empty result is suspicious.
#[must_use]
pub fn compare_docs(baseline: &Json, current: &Json, opts: &CompareOptions) -> Vec<Delta> {
    let mut out = Vec::new();
    walk("", baseline, current, opts, &mut out);
    out
}

/// The deltas that regressed, ready for a gate decision.
#[must_use]
pub fn regressions(deltas: &[Delta]) -> Vec<&Delta> {
    deltas.iter().filter(|d| d.regressed).collect()
}

fn walk(path: &str, base: &Json, cur: &Json, opts: &CompareOptions, out: &mut Vec<Delta>) {
    match (base, cur) {
        (Json::Obj(fields), Json::Obj(_)) => {
            for (key, bv) in fields {
                let Some(cv) = cur.get(key) else { continue };
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                if let (Json::Num(b), Json::Num(c)) = (bv, cv) {
                    if let Some(dir) = metric_direction(key) {
                        out.push(leaf_delta(child, *b, *c, dir, opts));
                    }
                } else {
                    walk(&child, bv, cv, opts, out);
                }
            }
        }
        (Json::Arr(brows), Json::Arr(crows)) => {
            // Object rows pair by identity; arrays of raw numbers (the
            // per-frame series) carry no stable identity and are skipped.
            for (i, brow) in brows.iter().enumerate() {
                if !matches!(brow, Json::Obj(_)) {
                    continue;
                }
                let label = row_label(brow);
                let crow = match &label {
                    Some(l) => crows.iter().find(|r| row_label(r).as_deref() == Some(l)),
                    None => crows.get(i),
                };
                if let Some(crow) = crow {
                    let tag = label.unwrap_or_else(|| i.to_string());
                    walk(&format!("{path}[{tag}]"), brow, crow, opts, out);
                }
            }
        }
        _ => {}
    }
}

fn leaf_delta(
    path: String,
    baseline: f64,
    current: f64,
    dir: Direction,
    opts: &CompareOptions,
) -> Delta {
    let worse = match dir {
        Direction::LowerIsBetter => current - baseline,
        Direction::HigherIsBetter => baseline - current,
    };
    let denom = baseline.abs().max(f64::MIN_POSITIVE);
    let worse_pct = 100.0 * worse / denom;
    let regressed = baseline.is_finite()
        && current.is_finite()
        && worse_pct > opts.max_pct
        && worse.abs() > opts.abs_floor;
    Delta {
        path,
        baseline,
        current,
        worse_pct,
        regressed,
    }
}

/// Fields that identify an array row across reorderings, by priority.
const ROW_KEYS: [&str; 8] = [
    "policy",
    "name",
    "bench",
    "deadline_ms",
    "interval",
    "kill_after_frames",
    "shard_id",
    "threads",
];

fn row_label(row: &Json) -> Option<String> {
    for key in ROW_KEYS {
        match row.get(key) {
            Some(Json::Str(s)) => return Some(format!("{key}={s}")),
            Some(Json::Num(n)) => return Some(format!("{key}={n}")),
            _ => {}
        }
    }
    None
}

/// Where baselines live relative to a results directory.
#[must_use]
pub fn baselines_dir(results_dir: &Path) -> PathBuf {
    results_dir.join("baselines")
}

/// A fingerprint of the measuring environment, written next to the
/// baselines so a cross-machine comparison is diagnosable rather than
/// mysterious. Best-effort: fields the platform cannot answer are null.
#[must_use]
pub fn env_fingerprint() -> Json {
    let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| Json::from(s.trim().to_string()))
        .unwrap_or(Json::Null);
    let cpus = std::thread::available_parallelism()
        .map(|n| Json::from(n.get()))
        .unwrap_or(Json::Null);
    Json::obj(vec![
        ("os", std::env::consts::OS.into()),
        ("arch", std::env::consts::ARCH.into()),
        ("cpus", cpus),
        ("kernel", kernel),
    ])
}

/// Copies every `BENCH_*.json` in `results_dir` into
/// `results_dir/baselines/`, stamping the set with `BASELINE_ENV.json`.
/// Returns the copied file names.
///
/// # Errors
///
/// Propagates filesystem errors; reports an empty results set (a
/// baseline of nothing would make every future comparison vacuous).
pub fn snapshot_baselines(results_dir: &Path) -> Result<Vec<String>, String> {
    let bench_files = list_bench_files(results_dir)?;
    if bench_files.is_empty() {
        return Err(format!(
            "no BENCH_*.json files in {} — run the figure binaries first",
            results_dir.display()
        ));
    }
    let dir = baselines_dir(results_dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut copied = Vec::new();
    for name in bench_files {
        let from = results_dir.join(&name);
        let to = dir.join(&name);
        std::fs::copy(&from, &to).map_err(|e| format!("{}: {e}", from.display()))?;
        copied.push(name);
    }
    let env_path = dir.join("BASELINE_ENV.json");
    std::fs::write(&env_path, format!("{}\n", env_fingerprint()))
        .map_err(|e| format!("{}: {e}", env_path.display()))?;
    Ok(copied)
}

/// The `BENCH_*.json` file names in a directory, sorted.
///
/// # Errors
///
/// Propagates directory-read failures; a missing directory is an empty
/// set, not an error.
pub fn list_bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    Ok(names)
}

/// One baseline file's comparison outcome.
#[derive(Debug, Clone)]
pub struct FileComparison {
    /// The `BENCH_*.json` file name.
    pub file: String,
    /// All directional deltas found (empty when the current results
    /// lack the file).
    pub deltas: Vec<Delta>,
    /// `None` when the current run produced no matching file.
    pub missing_current: bool,
}

/// Compares every baseline file against the current results directory.
///
/// # Errors
///
/// Propagates read/parse failures. An absent or empty baselines
/// directory returns `Ok(vec![])` — the caller treats that as
/// "warn-only first run", not an error.
pub fn compare_results(
    results_dir: &Path,
    opts: &CompareOptions,
) -> Result<Vec<FileComparison>, String> {
    let dir = baselines_dir(results_dir);
    let mut out = Vec::new();
    for name in list_bench_files(&dir)? {
        let base_text =
            std::fs::read_to_string(dir.join(&name)).map_err(|e| format!("{name}: {e}"))?;
        let baseline = Json::parse(&base_text).map_err(|e| format!("{name}: {e}"))?;
        let current_path = results_dir.join(&name);
        match std::fs::read_to_string(&current_path) {
            Ok(text) => {
                let current = Json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
                out.push(FileComparison {
                    file: name,
                    deltas: compare_docs(&baseline, &current, opts),
                    missing_current: false,
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                out.push(FileComparison {
                    file: name,
                    deltas: Vec::new(),
                    missing_current: true,
                });
            }
            Err(e) => return Err(format!("{}: {e}", current_path.display())),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(total_ms: f64, speedup: f64, overhead: f64) -> Json {
        Json::obj(vec![
            ("bench", "demo".into()),
            ("seed", 42.0.into()),
            (
                "policies",
                Json::Arr(vec![
                    Json::obj(vec![
                        ("policy", "NSTD-P".into()),
                        ("served", 100.0.into()),
                        ("total_dispatch_ms", total_ms.into()),
                        (
                            "dispatch_ms_by_frame",
                            Json::arr([total_ms / 2.0, total_ms / 2.0]),
                        ),
                    ]),
                    Json::obj(vec![
                        ("policy", "Near".into()),
                        ("total_dispatch_ms", (total_ms / 3.0).into()),
                    ]),
                ]),
            ),
            ("parallel_speedup", speedup.into()),
            ("overhead_pct", overhead.into()),
        ])
    }

    #[test]
    fn synthetic_slowdown_fires_the_gate() {
        // Current run is 2x slower than the (synthetically fast)
        // baseline: the ms metric and the speedup metric must both flag.
        let baseline = doc(100.0, 3.0, 1.0);
        let current = doc(200.0, 1.4, 1.0);
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        let bad = regressions(&deltas);
        let paths: Vec<&str> = bad.iter().map(|d| d.path.as_str()).collect();
        assert!(
            paths.contains(&"policies[policy=NSTD-P].total_dispatch_ms"),
            "{paths:?}"
        );
        assert!(paths.contains(&"parallel_speedup"), "{paths:?}");
        let ms = bad
            .iter()
            .find(|d| d.path.ends_with("NSTD-P].total_dispatch_ms"))
            .unwrap();
        assert!((ms.worse_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn honest_noise_passes_the_gate() {
        let baseline = doc(100.0, 3.0, 1.0);
        let current = doc(104.0, 2.9, 1.1); // a few percent of drift
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        assert!(!deltas.is_empty());
        assert!(regressions(&deltas).is_empty(), "{deltas:?}");
    }

    #[test]
    fn absolute_floor_suppresses_micro_noise() {
        // 0.1 ms -> 0.3 ms is a 200% relative change but far below the
        // absolute floor: scheduler noise, not a regression.
        let baseline = Json::obj(vec![("tiny_ms", 0.1.into())]);
        let current = Json::obj(vec![("tiny_ms", 0.3.into())]);
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regressed);
        // The same relative change above the floor does regress.
        let baseline = Json::obj(vec![("big_ms", 100.0.into())]);
        let current = Json::obj(vec![("big_ms", 300.0.into())]);
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        assert!(deltas[0].regressed);
    }

    #[test]
    fn improvements_and_non_directional_fields_never_flag() {
        let baseline = doc(100.0, 3.0, 2.0);
        let current = {
            // Faster, higher speedup, lower overhead, different served
            // count (identity data — must not be compared at all).
            let mut j = doc(50.0, 6.0, 0.5);
            if let Json::Obj(fields) = &mut j {
                fields.push(("served".into(), Json::from(999.0)));
            }
            j
        };
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        assert!(regressions(&deltas).is_empty());
        assert!(deltas.iter().all(|d| !d.path.contains("served")));
        assert!(deltas.iter().all(|d| !d.path.contains("seed")));
    }

    #[test]
    fn rows_pair_by_identity_across_reordering() {
        let baseline = doc(100.0, 3.0, 1.0);
        // Reverse the policy rows and slow only Near: the delta must
        // attach to Near, not NSTD-P.
        let current = Json::obj(vec![(
            "policies",
            Json::Arr(vec![
                Json::obj(vec![
                    ("policy", "Near".into()),
                    ("total_dispatch_ms", 500.0.into()),
                ]),
                Json::obj(vec![
                    ("policy", "NSTD-P".into()),
                    ("total_dispatch_ms", 100.0.into()),
                ]),
            ]),
        )]);
        let deltas = compare_docs(&baseline, &current, &CompareOptions::default());
        let near = deltas
            .iter()
            .find(|d| d.path == "policies[policy=Near].total_dispatch_ms")
            .expect("Near compared");
        assert!(near.regressed);
        let nstd = deltas
            .iter()
            .find(|d| d.path == "policies[policy=NSTD-P].total_dispatch_ms")
            .expect("NSTD-P compared");
        assert!(!nstd.regressed);
    }

    #[test]
    fn direction_table_matches_the_docs() {
        assert_eq!(
            metric_direction("total_dispatch_ms"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            metric_direction("overhead_pct"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            metric_direction("end_to_end_overhead_pct"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            metric_direction("parallel_speedup"),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(metric_direction("served"), None);
        assert_eq!(metric_direction("seed"), None);
    }

    #[test]
    fn snapshot_and_compare_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("o2o-regress-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_demo.json"),
            format!("{}\n", doc(100.0, 3.0, 1.0)),
        )
        .unwrap();
        // Empty baselines: warn-only, not an error.
        assert!(compare_results(&dir, &CompareOptions::default())
            .unwrap()
            .is_empty());
        let copied = snapshot_baselines(&dir).unwrap();
        assert_eq!(copied, vec!["BENCH_demo.json".to_string()]);
        assert!(baselines_dir(&dir).join("BASELINE_ENV.json").exists());
        // Unchanged results: compared, no regressions.
        let cmp = compare_results(&dir, &CompareOptions::default()).unwrap();
        assert_eq!(cmp.len(), 1);
        assert!(!cmp[0].missing_current);
        assert!(regressions(&cmp[0].deltas).is_empty());
        // Slowed results: the gate fires.
        std::fs::write(
            dir.join("BENCH_demo.json"),
            format!("{}\n", doc(250.0, 3.0, 1.0)),
        )
        .unwrap();
        let cmp = compare_results(&dir, &CompareOptions::default()).unwrap();
        assert!(!regressions(&cmp[0].deltas).is_empty());
        // A baseline whose current file vanished is reported as missing.
        std::fs::remove_file(dir.join("BENCH_demo.json")).unwrap();
        let cmp = compare_results(&dir, &CompareOptions::default()).unwrap();
        assert!(cmp[0].missing_current);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
