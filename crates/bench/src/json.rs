//! Machine-readable benchmark output (`results/BENCH_<name>.json`).
//!
//! The figure binaries print human-readable tables; this module gives the
//! same runs a stable machine-readable form so perf and quality can be
//! tracked across commits without scraping stdout. The writer is a tiny
//! hand-rolled JSON emitter (the build environment is offline, so no
//! serde) — good enough because every value we emit is a number, a
//! string, an array or an object.

use crate::ExperimentOpts;
use o2o_sim::SimReport;
use std::fmt;
use std::path::{Path, PathBuf};

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; render with `Display` (pretty-printed, 2-space indent).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; emitted with enough digits to round-trip.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs (keys keep insertion order).
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from anything convertible to JSON values.
    #[must_use]
    pub fn arr<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Parses a JSON document (the counterpart of the `Display` emitter;
    /// everything the emitter writes parses back to an equal value).
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("invalid \\u escape at offset {}", self.pos)
                                })?;
                            // Surrogates are not paired (the emitter never
                            // writes them); map them to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at offset {}", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.into())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_indented(f: &mut fmt::Formatter<'_>, v: &Json, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Json::Null => f.write_str("null"),
        Json::Bool(b) => write!(f, "{b}"),
        Json::Num(x) if !x.is_finite() => f.write_str("null"),
        Json::Num(x) => {
            // Integers without a fraction part; floats with the shortest
            // representation that round-trips ({:?} on f64).
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                write!(f, "{}", *x as i64)
            } else {
                write!(f, "{x:?}")
            }
        }
        Json::Str(s) => write_escaped(f, s),
        Json::Arr(items) if items.is_empty() => f.write_str("[]"),
        // Arrays of scalars stay on one line; nested structures wrap.
        Json::Arr(items)
            if items
                .iter()
                .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_))) =>
        {
            f.write_str("[")?;
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    f.write_str(", ")?;
                }
                write_indented(f, item, indent)?;
            }
            f.write_str("]")
        }
        Json::Arr(items) => {
            f.write_str("[\n")?;
            for (k, item) in items.iter().enumerate() {
                f.write_str(&inner)?;
                write_indented(f, item, indent + 1)?;
                f.write_str(if k + 1 < items.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{pad}]")
        }
        Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
        Json::Obj(fields) => {
            f.write_str("{\n")?;
            for (k, (key, value)) in fields.iter().enumerate() {
                f.write_str(&inner)?;
                write_escaped(f, key)?;
                f.write_str(": ")?;
                write_indented(f, value, indent + 1)?;
                f.write_str(if k + 1 < fields.len() { ",\n" } else { "\n" })?;
            }
            write!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_indented(f, self, 0)
    }
}

/// One policy's metrics block: the paper's three metrics, serving
/// statistics and the dispatch wall-clock series the engine recorded.
#[must_use]
pub fn policy_json(r: &SimReport) -> Json {
    Json::obj(vec![
        ("policy", r.policy.as_str().into()),
        ("served", r.served.into()),
        ("unserved_at_end", r.unserved_at_end.into()),
        ("frames", r.frames.into()),
        ("avg_delay_min", r.avg_delay_min().into()),
        (
            "frac_delay_le_1min",
            r.delay_cdf().fraction_at_most(1.0).into(),
        ),
        (
            "avg_passenger_dissatisfaction_km",
            r.avg_passenger_dissatisfaction().into(),
        ),
        (
            "avg_taxi_dissatisfaction_km",
            r.avg_taxi_dissatisfaction().into(),
        ),
        ("sharing_rate", r.sharing_rate().into()),
        ("total_drive_km", r.total_drive_km.into()),
        ("peak_queue", r.peak_queue().into()),
        ("total_dispatch_ms", r.total_dispatch_ms().into()),
        ("avg_dispatch_ms_per_frame", r.avg_dispatch_ms().into()),
        ("max_dispatch_ms", r.max_dispatch_ms().into()),
        (
            "dispatch_ms_by_frame",
            Json::arr(r.dispatch_ms_by_frame.iter().copied()),
        ),
        ("total_cache_hits", r.total_cache_hits().into()),
        ("total_cache_misses", r.total_cache_misses().into()),
        ("cache_hit_rate", r.cache_hit_rate().into()),
        ("anytime_frames", r.total_anytime_frames().into()),
        ("anytime_nodes_total", r.total_anytime_nodes().into()),
        (
            "anytime_final_gap",
            r.final_anytime_gap().map_or(Json::Null, Json::from),
        ),
        // Per-frame gap series only when the anytime search actually ran,
        // so non-anytime policies don't carry a zero-filled array.
        (
            "anytime_gap_by_frame",
            if r.total_anytime_frames() > 0 {
                Json::arr(r.anytime_gap_by_frame())
            } else {
                Json::Null
            },
        ),
        ("shard_frames", r.total_shard_frames().into()),
        ("stage_breakdown", stage_breakdown_json(&r.stage_breakdown)),
    ])
}

/// Aggregate view of a run's [`StageBreakdown`]: per-stage total
/// self-time and per-counter totals across every dispatched frame (the
/// per-frame series stays in the report; JSON carries the aggregate so
/// files stay small at full scale).
#[must_use]
pub fn stage_breakdown_json(b: &o2o_obs::StageBreakdown) -> Json {
    Json::obj(vec![
        ("frames_recorded", b.frames.len().into()),
        ("total_self_ms", b.total_self_ms().into()),
        (
            "stage_totals_ms",
            Json::Obj(
                b.stage_totals()
                    .into_iter()
                    .map(|(name, ms)| (name, Json::from(ms)))
                    .collect(),
            ),
        ),
        (
            "counter_totals",
            Json::Obj(
                b.counter_totals()
                    .into_iter()
                    .map(|(name, v)| (name, Json::from(v)))
                    .collect(),
            ),
        ),
    ])
}

/// The standard envelope of one benchmark run: name, experiment options
/// and the benchmark-specific body fields.
#[must_use]
pub fn bench_envelope(name: &str, opts: &ExperimentOpts, body: Vec<(&str, Json)>) -> Json {
    let mut fields = vec![
        ("bench", Json::from(name)),
        ("scale", opts.scale.into()),
        ("seed", opts.seed.into()),
        (
            "params",
            Json::obj(vec![
                ("alpha", opts.params.alpha.into()),
                ("beta", opts.params.beta.into()),
                ("taxi_threshold", opts.params.taxi_threshold.into()),
                (
                    "passenger_threshold",
                    opts.params.passenger_threshold.into(),
                ),
                ("detour_threshold", opts.params.detour_threshold.into()),
            ]),
        ),
    ];
    fields.extend(body);
    Json::obj(fields)
}

/// The workspace-root `results/` directory (anchored via
/// `CARGO_MANIFEST_DIR` so binaries and `cargo bench` targets — which
/// run with different working directories — agree on the location).
#[must_use]
pub fn results_dir() -> PathBuf {
    // crates/bench/ -> workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a workspace root");
    root.join("results")
}

/// Writes `value` to `results/BENCH_<name>.json` (see [`results_dir`])
/// and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, value: &Json) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, format!("{value}\n"))?;
    Ok(path)
}

/// One fleet shard's summary block inside [`fleet_json`].
fn shard_summary_json(s: &o2o_obs::ShardSummary) -> Json {
    Json::obj(vec![
        ("shard_id", s.meta.shard_id.into()),
        ("pid", s.meta.pid.into()),
        ("seed", s.meta.seed.into()),
        ("git", s.meta.git.as_deref().map_or(Json::Null, Json::from)),
        ("frames", s.frames.into()),
        ("wall_ms", s.wall_ms.into()),
        ("total_self_ms", s.total_self_ms.into()),
        (
            "stage_totals_ms",
            Json::Obj(
                s.stage_totals
                    .iter()
                    .map(|(name, ms)| (name.clone(), Json::from(*ms)))
                    .collect(),
            ),
        ),
        (
            "counter_totals",
            Json::Obj(
                s.counter_totals
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        ("slo_breaches", s.breaches.into()),
        ("slo_recoveries", s.recoveries.into()),
        (
            "slo_events",
            Json::Arr(
                s.slo_events
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("frame", e.frame.into()),
                            ("kind", e.kind.as_str().into()),
                            ("spec", e.spec.as_str().into()),
                            ("metric", e.metric.as_str().into()),
                            ("value", e.value.into()),
                            ("threshold", e.threshold.into()),
                            ("rung", e.rung.as_deref().map_or(Json::Null, Json::from)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A merged [`FleetSummary`](o2o_obs::FleetSummary) as the
/// `results/FLEET_<name>.json` document: fleet-wide totals, the pooled
/// frame-latency histogram, and one per-shard attribution block
/// (including each shard's SLO breach timeline). See `DESIGN.md` §8 for
/// the schema.
#[must_use]
pub fn fleet_json(fleet: &o2o_obs::FleetSummary) -> Json {
    Json::obj(vec![
        ("run_id", fleet.run_id.as_str().into()),
        ("schema_version", fleet.schema_version.into()),
        ("shard_count", fleet.shards.len().into()),
        ("frames", fleet.frames.into()),
        ("wall_ms", fleet.wall_ms.into()),
        ("total_self_ms", fleet.total_self_ms.into()),
        (
            "stage_totals_ms",
            Json::Obj(
                fleet
                    .stage_totals
                    .iter()
                    .map(|(name, ms)| (name.clone(), Json::from(*ms)))
                    .collect(),
            ),
        ),
        (
            "counter_totals",
            Json::Obj(
                fleet
                    .counter_totals
                    .iter()
                    .map(|(name, v)| (name.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
        (
            "frame_latency_hist",
            Json::obj(vec![
                ("edges_ms", Json::arr(fleet.latency.edges.iter().copied())),
                ("counts", Json::arr(fleet.latency.counts.iter().copied())),
                ("count", fleet.latency.count.into()),
                ("sum_ms", fleet.latency.sum.into()),
            ]),
        ),
        (
            "shards",
            Json::Arr(fleet.shards.iter().map(shard_summary_json).collect()),
        ),
    ])
}

/// Writes the JSON and prints the path to stderr (the figure binaries'
/// one-liner). Failures are reported, not fatal: the tables on stdout
/// are still the primary output.
pub fn emit_bench_json(name: &str, value: &Json) {
    match write_bench_json(name, value) {
        Ok(path) => eprintln!("{name}: wrote {}", path.display()),
        Err(e) => eprintln!("{name}: could not write benchmark JSON: {e}"),
    }
}

/// The standard figure-binary emission: envelope + one metrics block per
/// policy, written to `results/BENCH_<name>.json`.
pub fn emit_policies_json(name: &str, opts: &ExperimentOpts, reports: &[SimReport]) {
    let body = vec![(
        "policies",
        Json::Arr(reports.iter().map(policy_json).collect()),
    )];
    emit_bench_json(name, &bench_envelope(name, opts, body));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(3.0).to_string(), "3");
        assert_eq!(Json::from(0.25).to_string(), "0.25");
        assert_eq!(Json::from(f64::NAN).to_string(), "null");
        assert_eq!(Json::from("a\"b\n").to_string(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn numbers_round_trip() {
        // The shortest-repr path must preserve exact values.
        let x = 0.1 + 0.2;
        let s = Json::from(x).to_string();
        assert_eq!(s.parse::<f64>().unwrap(), x);
    }

    #[test]
    fn scalar_arrays_stay_inline() {
        let j = Json::arr([1.0, 2.5]);
        assert_eq!(j.to_string(), "[1, 2.5]");
        assert_eq!(Json::Arr(vec![]).to_string(), "[]");
    }

    #[test]
    fn objects_nest_with_indent() {
        let j = Json::obj(vec![
            ("name", "fig".into()),
            ("rows", Json::Arr(vec![Json::obj(vec![("x", 1.0.into())])])),
        ]);
        let s = j.to_string();
        assert!(s.contains("\"name\": \"fig\""));
        assert!(s.contains("    {\n      \"x\": 1\n    }"));
    }

    #[test]
    fn parse_round_trips_everything_the_emitter_writes() {
        let j = Json::obj(vec![
            ("name", "fig \"x\"\n".into()),
            ("ok", true.into()),
            ("miss", Json::Null),
            ("nums", Json::arr([1.0, -2.5, 1e-3, 9.0e15])),
            (
                "rows",
                Json::Arr(vec![Json::obj(vec![
                    ("x", 0.30000000000000004.into()),
                    ("tags", Json::arr(["a", "b"])),
                ])]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let j = Json::parse(r#"{"a": {"b": [1, "two", null]}, "c": 3}"#).unwrap();
        assert_eq!(j.get("c").and_then(Json::as_f64), Some(3.0));
        let arr = j.get("a").and_then(|a| a.get("b")).and_then(Json::as_arr);
        let arr = arr.unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert!(j.get("missing").is_none());
        assert!(arr[2].get("x").is_none());
    }

    #[test]
    fn policy_json_carries_timing() {
        let trace = o2o_trace::boston_september_2012(0.001).taxis(3).generate(5);
        let reports = crate::run_policies(
            &trace,
            &[crate::PolicyKind::Near],
            o2o_core::PreferenceParams::default(),
            o2o_sim::SimConfig::default(),
        );
        let j = policy_json(&reports[0]);
        let s = j.to_string();
        assert!(s.contains("\"policy\": \"Near\""));
        assert!(s.contains("\"dispatch_ms_by_frame\": ["));
        assert!(s.contains("\"total_dispatch_ms\""));
        assert!(s.contains("\"cache_hit_rate\""));
        // Anytime fields ride along even when the policy never ran the
        // anytime search: zero totals, null gap.
        assert!(s.contains("\"anytime_nodes_total\": 0"));
        assert!(s.contains("\"anytime_final_gap\": null"));
        assert!(s.contains("\"anytime_gap_by_frame\": null"));
        assert!(s.contains("\"shard_frames\": 0"));
    }

    #[test]
    fn policy_json_reports_cache_effectiveness_for_cached_policies() {
        let trace = o2o_trace::boston_september_2012(0.001).taxis(3).generate(5);
        let reports = crate::run_policies(
            &trace,
            &[crate::PolicyKind::StdP],
            o2o_core::PreferenceParams::default(),
            o2o_sim::SimConfig::default(),
        );
        // STD-P runs behind a per-frame distance cache, so the counters
        // must be live (misses at minimum; hits whenever a frame repeats
        // a query).
        assert!(reports[0].total_cache_misses() > 0);
        let s = policy_json(&reports[0]).to_string();
        assert!(s.contains("\"total_cache_misses\""));
        // The stage breakdown rides along: aggregate self-times per
        // pipeline stage plus counter totals.
        assert!(s.contains("\"stage_breakdown\""));
        assert!(s.contains("\"stage_totals_ms\""));
        assert!(s.contains("\"policy_dispatch\""));
        assert!(s.contains("\"cache.misses\""));
    }
}
