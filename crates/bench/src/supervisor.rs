//! Supervised multi-process benchmark runs.
//!
//! Long scenario sweeps die for boring reasons — OOM kills, node
//! preemption, a wedged run hitting a walltime limit. The supervisor
//! runs each scenario as a **child process** with a per-run timeout,
//! retries failures with capped exponential backoff, and quarantines a
//! scenario after repeated failure instead of sinking the whole sweep.
//! Children that checkpoint (see `o2o_sim::CheckpointSpec`) resume from
//! their checkpoint directory on retry, so a retried run repays only the
//! frames since the last checkpoint, and its results stay bit-identical
//! to an uninterrupted run.
//!
//! Each child writes its own partial `BENCH_*.json` shard;
//! [`merge_shards`] folds the shards into one document (scalar fields
//! must agree across shards, array fields concatenate), so a sweep
//! interrupted halfway still yields a well-formed, partial result file.

use crate::json::Json;
use std::fmt;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// One scenario to run as a child process.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// Scenario name (used in statuses and logs).
    pub name: String,
    /// Program to execute (usually `std::env::current_exe()` with a
    /// child-mode flag).
    pub program: PathBuf,
    /// Arguments passed verbatim.
    pub args: Vec<String>,
}

/// Retry and timeout policy for supervised children.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Wall-clock limit per attempt; a child past it is killed and the
    /// attempt counts as failed.
    pub timeout: Duration,
    /// Total attempts per scenario before quarantine (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)`, capped at
    /// [`backoff_cap`](Self::backoff_cap).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            timeout: Duration::from_secs(600),
            max_attempts: 3,
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(10),
        }
    }
}

/// Terminal state of one supervised scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// Some attempt exited 0.
    Succeeded,
    /// Every attempt failed; the scenario is set aside so the rest of
    /// the sweep can proceed.
    Quarantined {
        /// The last attempt's failure, human-readable.
        reason: String,
    },
}

/// What happened to one scenario across all its attempts.
#[derive(Debug, Clone)]
pub struct RunStatus {
    /// Scenario name from the [`ChildSpec`].
    pub name: String,
    /// Attempts actually made (1 = clean first run).
    pub attempts: u32,
    /// Attempts that were killed for exceeding the timeout.
    pub timeouts: u32,
    /// Total wall-clock across attempts, including backoff sleeps.
    pub wall: Duration,
    /// Terminal verdict.
    pub verdict: RunVerdict,
}

impl RunStatus {
    /// `true` when the scenario ultimately succeeded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.verdict == RunVerdict::Succeeded
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            RunVerdict::Succeeded => write!(
                f,
                "{}: ok after {} attempt(s) ({} timeout(s), {:.1}s)",
                self.name,
                self.attempts,
                self.timeouts,
                self.wall.as_secs_f64()
            ),
            RunVerdict::Quarantined { reason } => write!(
                f,
                "{}: QUARANTINED after {} attempt(s): {reason}",
                self.name, self.attempts
            ),
        }
    }
}

/// Exit disposition of a single attempt.
enum Attempt {
    Ok,
    Failed(String),
    TimedOut,
}

fn run_attempt(spec: &ChildSpec, timeout: Duration) -> std::io::Result<Attempt> {
    let mut child = Command::new(&spec.program)
        .args(&spec.args)
        .stdin(Stdio::null())
        .spawn()?;
    let started = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(if status.success() {
                Attempt::Ok
            } else {
                Attempt::Failed(status.to_string())
            });
        }
        if started.elapsed() >= timeout {
            // Kill and reap; a SIGKILLed child is exactly the crash the
            // checkpoint/WAL machinery is built to resume from.
            let _ = child.kill();
            let _ = child.wait();
            return Ok(Attempt::TimedOut);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs one scenario under the policy: spawn, poll with timeout, retry
/// with capped exponential backoff, quarantine after
/// [`SupervisorPolicy::max_attempts`] failures.
#[must_use]
pub fn supervise_one(spec: &ChildSpec, policy: &SupervisorPolicy) -> RunStatus {
    let started = Instant::now();
    let max_attempts = policy.max_attempts.max(1);
    let mut timeouts = 0u32;
    let mut last_failure = String::new();
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            let exp = attempt - 2; // first retry sleeps the base
            let backoff = policy
                .backoff_base
                .saturating_mul(2u32.saturating_pow(exp))
                .min(policy.backoff_cap);
            std::thread::sleep(backoff);
        }
        match run_attempt(spec, policy.timeout) {
            Ok(Attempt::Ok) => {
                return RunStatus {
                    name: spec.name.clone(),
                    attempts: attempt,
                    timeouts,
                    wall: started.elapsed(),
                    verdict: RunVerdict::Succeeded,
                }
            }
            Ok(Attempt::Failed(reason)) => last_failure = reason,
            Ok(Attempt::TimedOut) => {
                timeouts += 1;
                last_failure = format!("timed out after {:.1}s", policy.timeout.as_secs_f64());
            }
            Err(e) => last_failure = format!("spawn failed: {e}"),
        }
        eprintln!(
            "supervisor: {} attempt {attempt}/{max_attempts} failed: {last_failure}",
            spec.name
        );
    }
    RunStatus {
        name: spec.name.clone(),
        attempts: max_attempts,
        timeouts,
        wall: started.elapsed(),
        verdict: RunVerdict::Quarantined {
            reason: last_failure,
        },
    }
}

/// Supervises each scenario in order, returning one status per spec.
/// A quarantined scenario does not stop the sweep.
#[must_use]
pub fn supervise(specs: &[ChildSpec], policy: &SupervisorPolicy) -> Vec<RunStatus> {
    specs.iter().map(|s| supervise_one(s, policy)).collect()
}

/// Merges partial result shards into one document.
///
/// Shards are objects. A key seen in one shard is copied; a key seen in
/// several must either carry equal values (kept once — the envelope
/// fields) or arrays (concatenated in shard order — the row fields).
///
/// # Errors
///
/// Reports the first key whose values conflict without both being
/// arrays.
pub fn merge_shards(shards: Vec<Json>) -> Result<Json, String> {
    let mut out: Vec<(String, Json)> = Vec::new();
    for (i, shard) in shards.into_iter().enumerate() {
        let Json::Obj(fields) = shard else {
            return Err(format!("shard {i} is not an object"));
        };
        for (key, value) in fields {
            match out.iter_mut().find(|(k, _)| *k == key) {
                None => out.push((key, value)),
                Some((_, existing)) => match (existing, value) {
                    (Json::Arr(acc), Json::Arr(more)) => acc.extend(more),
                    (existing, value) => {
                        if *existing != value {
                            return Err(format!(
                                "shard {i}: conflicting values for key \"{key}\""
                            ));
                        }
                    }
                },
            }
        }
    }
    Ok(Json::Obj(out))
}

/// Reads and merges shard files (see [`merge_shards`]). Missing files
/// are skipped — a quarantined child simply contributes no rows — but at
/// least one shard must exist.
///
/// # Errors
///
/// Propagates parse and merge failures, and reports an empty shard set.
pub fn merge_shard_files(paths: &[PathBuf]) -> Result<Json, String> {
    let mut shards = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(text) => shards.push(
                Json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("{}: {e}", p.display())),
        }
    }
    if shards.is_empty() {
        return Err("no shards found".into());
    }
    merge_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(name: &str, script: &str) -> ChildSpec {
        ChildSpec {
            name: name.into(),
            program: "/bin/sh".into(),
            args: vec!["-c".into(), script.into()],
        }
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            timeout: Duration::from_secs(30),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn clean_child_succeeds_first_attempt() {
        let status = supervise_one(&sh("clean", "exit 0"), &fast_policy());
        assert!(status.succeeded());
        assert_eq!(status.attempts, 1);
        assert_eq!(status.timeouts, 0);
    }

    #[test]
    fn flaky_child_is_retried_to_success() {
        // Fails on the first attempt (marker absent), succeeds on the
        // second — the file is the "checkpoint" carrying progress across
        // process deaths.
        let marker = std::env::temp_dir().join(format!(
            "o2o-supervisor-flaky-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "if [ -f {m} ]; then exit 0; else touch {m}; exit 1; fi",
            m = marker.display()
        );
        let status = supervise_one(&sh("flaky", &script), &fast_policy());
        assert!(status.succeeded(), "{status}");
        assert_eq!(status.attempts, 2);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn hung_child_times_out_and_quarantines() {
        let policy = SupervisorPolicy {
            timeout: Duration::from_millis(60),
            max_attempts: 2,
            ..fast_policy()
        };
        let status = supervise_one(&sh("hung", "sleep 30"), &policy);
        assert!(!status.succeeded());
        assert_eq!(status.attempts, 2);
        assert_eq!(status.timeouts, 2);
        assert!(matches!(status.verdict, RunVerdict::Quarantined { .. }));
    }

    #[test]
    fn quarantine_does_not_stop_the_sweep() {
        let statuses = supervise(
            &[sh("bad", "exit 3"), sh("good", "exit 0")],
            &SupervisorPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        assert!(!statuses[0].succeeded());
        assert!(statuses[1].succeeded());
    }

    #[test]
    fn shards_merge_rows_and_agreeing_envelopes() {
        let a = Json::obj(vec![
            ("bench", "demo".into()),
            ("rows", Json::Arr(vec![Json::from(1.0)])),
        ]);
        let b = Json::obj(vec![
            ("bench", "demo".into()),
            ("rows", Json::Arr(vec![Json::from(2.0), Json::from(3.0)])),
        ]);
        let merged = merge_shards(vec![a, b]).unwrap();
        assert_eq!(merged.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(merged.get("rows").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn conflicting_scalars_refuse_to_merge() {
        let a = Json::obj(vec![("seed", 1.0.into())]);
        let b = Json::obj(vec![("seed", 2.0.into())]);
        let err = merge_shards(vec![a, b]).unwrap_err();
        assert!(err.contains("seed"), "{err}");
    }

    #[test]
    fn missing_shard_files_are_skipped() {
        let dir = std::env::temp_dir();
        let present = dir.join(format!("o2o-shard-{}.json", std::process::id()));
        std::fs::write(&present, "{\"rows\": [1]}").unwrap();
        let absent = dir.join("o2o-shard-definitely-absent.json");
        let merged = merge_shard_files(&[absent.clone(), present.clone()]).unwrap();
        assert_eq!(merged.get("rows").and_then(Json::as_arr).unwrap().len(), 1);
        assert!(merge_shard_files(&[absent]).is_err());
        let _ = std::fs::remove_file(&present);
    }
}
