//! Supervised multi-process benchmark runs.
//!
//! Long scenario sweeps die for boring reasons — OOM kills, node
//! preemption, a wedged run hitting a walltime limit. The supervisor
//! runs each scenario as a **child process** with a per-run timeout,
//! retries failures with capped exponential backoff, and quarantines a
//! scenario after repeated failure instead of sinking the whole sweep.
//! Children that checkpoint (see `o2o_sim::CheckpointSpec`) resume from
//! their checkpoint directory on retry, so a retried run repays only the
//! frames since the last checkpoint, and its results stay bit-identical
//! to an uninterrupted run.
//!
//! Each child writes its own partial `BENCH_*.json` shard;
//! [`merge_shards`] folds the shards into one document (scalar fields
//! must agree across shards, array fields concatenate), so a sweep
//! interrupted halfway still yields a well-formed, partial result file.

use crate::json::Json;
use std::fmt;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// One scenario to run as a child process.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// Scenario name (used in statuses and logs).
    pub name: String,
    /// Program to execute (usually `std::env::current_exe()` with a
    /// child-mode flag).
    pub program: PathBuf,
    /// Arguments passed verbatim.
    pub args: Vec<String>,
}

/// Retry and timeout policy for supervised children.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Wall-clock limit per attempt; a child past it is killed and the
    /// attempt counts as failed.
    pub timeout: Duration,
    /// Total attempts per scenario before quarantine (at least 1).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base * 2^(n-1)`, capped at
    /// [`backoff_cap`](Self::backoff_cap).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            timeout: Duration::from_secs(600),
            max_attempts: 3,
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(10),
        }
    }
}

/// Terminal state of one supervised scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunVerdict {
    /// Some attempt exited 0.
    Succeeded,
    /// Every attempt failed; the scenario is set aside so the rest of
    /// the sweep can proceed.
    Quarantined {
        /// The last attempt's failure, human-readable.
        reason: String,
    },
}

/// What happened to one scenario across all its attempts.
#[derive(Debug, Clone)]
pub struct RunStatus {
    /// Scenario name from the [`ChildSpec`].
    pub name: String,
    /// Attempts actually made (1 = clean first run).
    pub attempts: u32,
    /// Attempts that were killed for exceeding the timeout.
    pub timeouts: u32,
    /// Total wall-clock across attempts, including backoff sleeps.
    pub wall: Duration,
    /// Terminal verdict.
    pub verdict: RunVerdict,
}

impl RunStatus {
    /// `true` when the scenario ultimately succeeded.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.verdict == RunVerdict::Succeeded
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.verdict {
            RunVerdict::Succeeded => write!(
                f,
                "{}: ok after {} attempt(s) ({} timeout(s), {:.1}s)",
                self.name,
                self.attempts,
                self.timeouts,
                self.wall.as_secs_f64()
            ),
            RunVerdict::Quarantined { reason } => write!(
                f,
                "{}: QUARANTINED after {} attempt(s): {reason}",
                self.name, self.attempts
            ),
        }
    }
}

/// Exit disposition of a single attempt.
enum Attempt {
    Ok,
    Failed(String),
    TimedOut,
}

fn run_attempt(spec: &ChildSpec, timeout: Duration) -> std::io::Result<Attempt> {
    let mut child = Command::new(&spec.program)
        .args(&spec.args)
        .stdin(Stdio::null())
        .spawn()?;
    let started = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(if status.success() {
                Attempt::Ok
            } else {
                Attempt::Failed(status.to_string())
            });
        }
        if started.elapsed() >= timeout {
            // Kill and reap; a SIGKILLed child is exactly the crash the
            // checkpoint/WAL machinery is built to resume from.
            let _ = child.kill();
            let _ = child.wait();
            return Ok(Attempt::TimedOut);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs one scenario under the policy: spawn, poll with timeout, retry
/// with capped exponential backoff, quarantine after
/// [`SupervisorPolicy::max_attempts`] failures.
#[must_use]
pub fn supervise_one(spec: &ChildSpec, policy: &SupervisorPolicy) -> RunStatus {
    let started = Instant::now();
    let max_attempts = policy.max_attempts.max(1);
    let mut timeouts = 0u32;
    let mut last_failure = String::new();
    for attempt in 1..=max_attempts {
        if attempt > 1 {
            let exp = attempt - 2; // first retry sleeps the base
            let backoff = policy
                .backoff_base
                .saturating_mul(2u32.saturating_pow(exp))
                .min(policy.backoff_cap);
            std::thread::sleep(backoff);
        }
        match run_attempt(spec, policy.timeout) {
            Ok(Attempt::Ok) => {
                return RunStatus {
                    name: spec.name.clone(),
                    attempts: attempt,
                    timeouts,
                    wall: started.elapsed(),
                    verdict: RunVerdict::Succeeded,
                }
            }
            Ok(Attempt::Failed(reason)) => last_failure = reason,
            Ok(Attempt::TimedOut) => {
                timeouts += 1;
                last_failure = format!("timed out after {:.1}s", policy.timeout.as_secs_f64());
            }
            Err(e) => last_failure = format!("spawn failed: {e}"),
        }
        eprintln!(
            "supervisor: {} attempt {attempt}/{max_attempts} failed: {last_failure}",
            spec.name
        );
    }
    RunStatus {
        name: spec.name.clone(),
        attempts: max_attempts,
        timeouts,
        wall: started.elapsed(),
        verdict: RunVerdict::Quarantined {
            reason: last_failure,
        },
    }
}

/// Supervises each scenario in order, returning one status per spec.
/// A quarantined scenario does not stop the sweep.
#[must_use]
pub fn supervise(specs: &[ChildSpec], policy: &SupervisorPolicy) -> Vec<RunStatus> {
    specs.iter().map(|s| supervise_one(s, policy)).collect()
}

/// Merges partial result shards into one document.
///
/// Shards are objects, merged recursively: objects deep-merge key by
/// key, arrays concatenate in shard order (the row fields), and any
/// other pair must carry equal values (kept once — the envelope
/// fields). The rules apply at every nesting level, so two shards whose
/// `params` objects agree merge cleanly while a disagreement inside one
/// is still caught.
///
/// # Errors
///
/// Reports the first conflicting value with its full dotted path (e.g.
/// `params.alpha`) and the index of the shard that disagreed.
pub fn merge_shards(shards: Vec<Json>) -> Result<Json, String> {
    let mut iter = shards.into_iter().enumerate();
    let Some((_, first)) = iter.next() else {
        return Err("no shards to merge".into());
    };
    if !matches!(first, Json::Obj(_)) {
        return Err("shard 0 is not an object".into());
    }
    let mut out = first;
    for (i, shard) in iter {
        if !matches!(shard, Json::Obj(_)) {
            return Err(format!("shard {i} is not an object"));
        }
        merge_value(&mut out, shard, i, "")?;
    }
    Ok(out)
}

/// Recursive merge step: `incoming` (from shard index `shard`) folds
/// into `existing`; `path` is the dotted location for error messages.
fn merge_value(
    existing: &mut Json,
    incoming: Json,
    shard: usize,
    path: &str,
) -> Result<(), String> {
    match (&mut *existing, incoming) {
        (Json::Obj(have), Json::Obj(more)) => {
            for (key, value) in more {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match have.iter_mut().find(|(k, _)| *k == key) {
                    None => have.push((key, value)),
                    Some((_, slot)) => merge_value(slot, value, shard, &child)?,
                }
            }
            Ok(())
        }
        (Json::Arr(have), Json::Arr(more)) => {
            have.extend(more);
            Ok(())
        }
        (have, value) => {
            if *have == value {
                Ok(())
            } else {
                let at = if path.is_empty() { "<root>" } else { path };
                Err(format!(
                    "shard {shard}: conflicting values at \"{at}\" ({have} vs {value})"
                ))
            }
        }
    }
}

/// Merges supervised children's JSONL telemetry streams into one
/// fleet-wide summary and writes it to `results/FLEET_<name>.json`.
///
/// Each path is one child's manifest-stamped JSONL stream (a
/// [`JsonlSink`](o2o_obs::JsonlSink) with
/// [`FleetMeta`](o2o_obs::FleetMeta)). Missing files are skipped — a
/// quarantined child contributes no telemetry — but at least one stream
/// must exist. Parsing validates each stream's schema version and span
/// balance; merging validates run-id agreement and shard-id uniqueness
/// (see `o2o_obs::fleet`).
///
/// Returns the written path and the merged summary so callers can
/// reconcile it against the children's own numbers.
///
/// # Errors
///
/// Propagates read, parse, and merge failures, and reports an empty
/// stream set.
pub fn write_fleet_json(
    name: &str,
    shard_logs: &[PathBuf],
    opts: &o2o_obs::FleetOptions,
) -> Result<(PathBuf, o2o_obs::FleetSummary), String> {
    let mut shards = Vec::new();
    for p in shard_logs {
        match std::fs::read_to_string(p) {
            Ok(text) => shards.push(
                o2o_obs::fleet::parse_shard_str(&text, opts)
                    .map_err(|e| format!("{}: {e}", p.display()))?,
            ),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("{}: {e}", p.display())),
        }
    }
    if shards.is_empty() {
        return Err("no fleet telemetry streams found".into());
    }
    let summary = o2o_obs::fleet::merge(shards).map_err(|e| format!("fleet merge: {e}"))?;
    let dir = crate::json::results_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("FLEET_{name}.json"));
    std::fs::write(&path, format!("{}\n", crate::json::fleet_json(&summary)))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok((path, summary))
}

/// Reads and merges shard files (see [`merge_shards`]). Missing files
/// are skipped — a quarantined child simply contributes no rows — but at
/// least one shard must exist.
///
/// # Errors
///
/// Propagates parse and merge failures, and reports an empty shard set.
pub fn merge_shard_files(paths: &[PathBuf]) -> Result<Json, String> {
    let mut shards = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(text) => {
                shards.push(Json::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("{}: {e}", p.display())),
        }
    }
    if shards.is_empty() {
        return Err("no shards found".into());
    }
    merge_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(name: &str, script: &str) -> ChildSpec {
        ChildSpec {
            name: name.into(),
            program: "/bin/sh".into(),
            args: vec!["-c".into(), script.into()],
        }
    }

    fn fast_policy() -> SupervisorPolicy {
        SupervisorPolicy {
            timeout: Duration::from_secs(30),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    #[test]
    fn clean_child_succeeds_first_attempt() {
        let status = supervise_one(&sh("clean", "exit 0"), &fast_policy());
        assert!(status.succeeded());
        assert_eq!(status.attempts, 1);
        assert_eq!(status.timeouts, 0);
    }

    #[test]
    fn flaky_child_is_retried_to_success() {
        // Fails on the first attempt (marker absent), succeeds on the
        // second — the file is the "checkpoint" carrying progress across
        // process deaths.
        let marker =
            std::env::temp_dir().join(format!("o2o-supervisor-flaky-{}", std::process::id()));
        let _ = std::fs::remove_file(&marker);
        let script = format!(
            "if [ -f {m} ]; then exit 0; else touch {m}; exit 1; fi",
            m = marker.display()
        );
        let status = supervise_one(&sh("flaky", &script), &fast_policy());
        assert!(status.succeeded(), "{status}");
        assert_eq!(status.attempts, 2);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn hung_child_times_out_and_quarantines() {
        let policy = SupervisorPolicy {
            timeout: Duration::from_millis(60),
            max_attempts: 2,
            ..fast_policy()
        };
        let status = supervise_one(&sh("hung", "sleep 30"), &policy);
        assert!(!status.succeeded());
        assert_eq!(status.attempts, 2);
        assert_eq!(status.timeouts, 2);
        assert!(matches!(status.verdict, RunVerdict::Quarantined { .. }));
    }

    #[test]
    fn quarantine_does_not_stop_the_sweep() {
        let statuses = supervise(
            &[sh("bad", "exit 3"), sh("good", "exit 0")],
            &SupervisorPolicy {
                max_attempts: 2,
                ..fast_policy()
            },
        );
        assert!(!statuses[0].succeeded());
        assert!(statuses[1].succeeded());
    }

    #[test]
    fn shards_merge_rows_and_agreeing_envelopes() {
        let a = Json::obj(vec![
            ("bench", "demo".into()),
            ("rows", Json::Arr(vec![Json::from(1.0)])),
        ]);
        let b = Json::obj(vec![
            ("bench", "demo".into()),
            ("rows", Json::Arr(vec![Json::from(2.0), Json::from(3.0)])),
        ]);
        let merged = merge_shards(vec![a, b]).unwrap();
        assert_eq!(merged.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(merged.get("rows").and_then(Json::as_arr).unwrap().len(), 3);
    }

    #[test]
    fn conflicting_scalars_refuse_to_merge() {
        let a = Json::obj(vec![("seed", 1.0.into())]);
        let b = Json::obj(vec![("seed", 2.0.into())]);
        let err = merge_shards(vec![a, b]).unwrap_err();
        assert!(err.contains("\"seed\""), "{err}");
        assert!(err.contains("shard 1"), "{err}");
    }

    #[test]
    fn nested_objects_deep_merge() {
        // Envelope objects that agree on shared keys merge key-by-key,
        // and keys present in only one shard are kept — two children
        // each contributing half of a nested summary compose cleanly.
        let a = Json::obj(vec![
            ("params", Json::obj(vec![("alpha", 0.5.into())])),
            (
                "summary",
                Json::obj(vec![
                    ("shard_a_ms", 10.0.into()),
                    ("rows", Json::Arr(vec![Json::from(1.0)])),
                ]),
            ),
        ]);
        let b = Json::obj(vec![
            (
                "params",
                Json::obj(vec![("alpha", 0.5.into()), ("beta", 0.4.into())]),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("shard_b_ms", 20.0.into()),
                    ("rows", Json::Arr(vec![Json::from(2.0)])),
                ]),
            ),
        ]);
        let merged = merge_shards(vec![a, b]).unwrap();
        let params = merged.get("params").unwrap();
        assert_eq!(params.get("alpha").and_then(Json::as_f64), Some(0.5));
        assert_eq!(params.get("beta").and_then(Json::as_f64), Some(0.4));
        let summary = merged.get("summary").unwrap();
        assert_eq!(summary.get("shard_a_ms").and_then(Json::as_f64), Some(10.0));
        assert_eq!(summary.get("shard_b_ms").and_then(Json::as_f64), Some(20.0));
        // Nested arrays concatenate in shard order.
        assert_eq!(
            summary.get("rows").and_then(Json::as_arr).unwrap(),
            &[Json::from(1.0), Json::from(2.0)]
        );
    }

    #[test]
    fn nested_conflicts_name_the_dotted_path_and_shard() {
        let a = Json::obj(vec![(
            "params",
            Json::obj(vec![("thresholds", Json::obj(vec![("taxi", 1.0.into())]))]),
        )]);
        let ok = Json::obj(vec![(
            "params",
            Json::obj(vec![("thresholds", Json::obj(vec![("taxi", 1.0.into())]))]),
        )]);
        let bad = Json::obj(vec![(
            "params",
            Json::obj(vec![("thresholds", Json::obj(vec![("taxi", 2.0.into())]))]),
        )]);
        let err = merge_shards(vec![a, ok, bad]).unwrap_err();
        assert!(err.contains("\"params.thresholds.taxi\""), "{err}");
        assert!(err.contains("shard 2"), "{err}");
        assert!(err.contains("1 vs 2"), "{err}");
    }

    #[test]
    fn type_mismatches_are_conflicts_not_silent_overwrites() {
        let a = Json::obj(vec![("rows", Json::Arr(vec![Json::from(1.0)]))]);
        let b = Json::obj(vec![("rows", 7.0.into())]);
        let err = merge_shards(vec![a, b]).unwrap_err();
        assert!(err.contains("\"rows\""), "{err}");
        assert!(merge_shards(vec![]).is_err());
    }

    #[test]
    fn missing_shard_files_are_skipped() {
        let dir = std::env::temp_dir();
        let present = dir.join(format!("o2o-shard-{}.json", std::process::id()));
        std::fs::write(&present, "{\"rows\": [1]}").unwrap();
        let absent = dir.join("o2o-shard-definitely-absent.json");
        let merged = merge_shard_files(&[absent.clone(), present.clone()]).unwrap();
        assert_eq!(merged.get("rows").and_then(Json::as_arr).unwrap().len(), 1);
        assert!(merge_shard_files(&[absent]).is_err());
        let _ = std::fs::remove_file(&present);
    }
}
