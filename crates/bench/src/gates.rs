//! Environment-variable acceptance gates, consolidated.
//!
//! Several benchmarks enforce a numeric threshold that CI machines
//! sometimes need to loosen (noisy neighbours, slow disks). Each gate is
//! one documented environment variable with a default; this module is
//! the single place they are declared and parsed, so every binary
//! resolves them identically — same precedence, same error behaviour
//! (malformed values are a loud panic, never a silent fallback that
//! would let a regression slip through as "the variable was set wrong").
//!
//! | Variable | Default | Used by |
//! |---|---|---|
//! | `O2O_OBS_MAX_OVERHEAD_PCT` | 3.0 | `fig_obs_overhead` — max telemetry overhead, percent |
//! | `O2O_RECOVERY_OVERHEAD_MAX` | 3.0 | `fig_recovery` — max checkpoint overhead, percent |
//! | `O2O_REGRESS_MAX_PCT` | 25.0 | `bench compare` — max per-metric perf regression, percent |

/// One numeric env-var gate: a variable name and its default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gate {
    /// Environment variable consulted.
    pub var: &'static str,
    /// Value used when the variable is unset.
    pub default: f64,
}

/// Maximum telemetry overhead (percent) accepted by `fig_obs_overhead`.
pub const OBS_MAX_OVERHEAD_PCT: Gate = Gate {
    var: "O2O_OBS_MAX_OVERHEAD_PCT",
    default: 3.0,
};

/// Maximum checkpoint-machinery overhead (percent) accepted by
/// `fig_recovery` at the default checkpoint interval.
pub const RECOVERY_OVERHEAD_MAX: Gate = Gate {
    var: "O2O_RECOVERY_OVERHEAD_MAX",
    default: 3.0,
};

/// Maximum per-metric slowdown (percent) the regression comparator
/// (`bench compare`) accepts before failing the run.
pub const REGRESS_MAX_PCT: Gate = Gate {
    var: "O2O_REGRESS_MAX_PCT",
    default: 25.0,
};

impl Gate {
    /// Resolves the gate against a raw value (the variable's content, or
    /// `None` when unset). Split from [`value`](Self::value) so tests
    /// can cover the parse behaviour without mutating process-global
    /// environment state.
    ///
    /// # Panics
    ///
    /// Panics when the value is set but not a finite non-negative number
    /// — a misconfigured gate must fail the run, not silently revert to
    /// the default.
    #[must_use]
    pub fn resolve(&self, raw: Option<&str>) -> f64 {
        match raw {
            None => self.default,
            Some(s) => {
                let parsed: f64 = s.trim().parse().unwrap_or_else(|_| {
                    panic!("{}={s:?} is not a number (expected e.g. 3.0)", self.var)
                });
                assert!(
                    parsed.is_finite() && parsed >= 0.0,
                    "{}={s:?} must be a finite non-negative percentage",
                    self.var
                );
                parsed
            }
        }
    }

    /// The gate's effective value: the environment variable when set,
    /// the default otherwise.
    ///
    /// # Panics
    ///
    /// See [`resolve`](Self::resolve).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.resolve(std::env::var(self.var).ok().as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_gates_use_their_documented_defaults() {
        assert_eq!(OBS_MAX_OVERHEAD_PCT.resolve(None), 3.0);
        assert_eq!(RECOVERY_OVERHEAD_MAX.resolve(None), 3.0);
        assert_eq!(REGRESS_MAX_PCT.resolve(None), 25.0);
    }

    #[test]
    fn set_values_override_and_whitespace_is_tolerated() {
        assert_eq!(REGRESS_MAX_PCT.resolve(Some("40")), 40.0);
        assert_eq!(OBS_MAX_OVERHEAD_PCT.resolve(Some(" 7.5 ")), 7.5);
        assert_eq!(RECOVERY_OVERHEAD_MAX.resolve(Some("0")), 0.0);
    }

    #[test]
    #[should_panic(expected = "is not a number")]
    fn malformed_values_panic_instead_of_falling_back() {
        let _ = REGRESS_MAX_PCT.resolve(Some("three percent"));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_values_are_rejected() {
        let _ = OBS_MAX_OVERHEAD_PCT.resolve(Some("-1"));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn non_finite_values_are_rejected() {
        let _ = RECOVERY_OVERHEAD_MAX.resolve(Some("inf"));
    }
}
