//! Observability overhead: instrumented vs disabled recorder.
//!
//! Runs the same trace through the NSTD-P pipeline under four recorder
//! configurations:
//!
//! * **disabled** — [`Recorder::disabled`], the no-op handle; every
//!   telemetry call short-circuits on a `None` branch;
//! * **memory** — the engine's default collecting recorder (in-memory
//!   `StageBreakdown`, no sinks);
//! * **jsonl** — a recorder streaming every event to
//!   `results/obs_events.jsonl` through a buffered [`JsonlSink`];
//! * **fleet** — the full fleet-telemetry stack: a manifest-stamped
//!   JSONL stream ([`FleetMeta`] header) plus live SLO monitoring
//!   ([`SloSpec`]s on frame latency and served ratio).
//!
//! The arms are first asserted **bit-identical** on every
//! dispatch-facing report field — telemetry may never change results —
//! and the enabled arms' per-frame stage self-times are checked against
//! the frame wall-clock. Then the arms are timed interleaved
//! (best-of-`REPS`) and the relative overhead of the jsonl arm *and* the
//! fleet arm is compared against a budget: `O2O_OBS_MAX_OVERHEAD_PCT`
//! (default 3%, see `o2o_bench::gates`), with a small absolute floor so
//! reduced-scale CI runs, whose per-run wall-clock is a few
//! milliseconds, do not flake on timer noise.
//!
//! Output: `results/BENCH_obs_overhead.json`.

use o2o_bench::{
    bench_envelope, emit_bench_json, results_dir, ExperimentOpts, OBS_MAX_OVERHEAD_PCT,
};
use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_par::Parallelism;
use o2o_sim::{
    policy, FleetMeta, JsonlSink, Recorder, SimConfig, SimReport, Simulator, SloMetric, SloSpec,
};
use o2o_trace::Trace;
use std::path::PathBuf;
use std::time::Instant;

/// Interleaved timing repetitions per arm; best-of is reported. The
/// bench is cheap (tens of ms per run at default scale), so a generous
/// count keeps the min estimates stable on noisy shared runners.
const REPS: usize = 9;
/// Absolute slack (ms) under which the overhead check always passes.
/// At reduced CI scales a full run takes single-digit milliseconds and
/// a 3% relative budget would be far below timer resolution.
const ABS_SLACK_MS: f64 = 5.0;

fn results_path(file: &str) -> PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir.join(file)
}

/// The fleet arm's SLO specs: a latency ceiling that is guaranteed to
/// breach (so the monitor's transition path is exercised, not just its
/// bookkeeping) and a served-ratio floor that stays green.
fn slo_specs() -> Vec<SloSpec> {
    vec![
        SloSpec::max("p50-zero", SloMetric::FrameP50Ms, 0.0, 8),
        SloSpec::min("served", SloMetric::ServedRatio, 0.01, 8),
    ]
}

fn run_arm(trace: &Trace, params: PreferenceParams, recorder: Recorder) -> SimReport {
    let mut policy = policy::nstd_p(Euclidean, params);
    Simulator::new(SimConfig::default())
        .with_parallelism(Parallelism::sequential())
        .with_recorder(recorder)
        .run(trace, &mut policy)
}

/// The fully loaded configuration: manifest-stamped stream + SLO specs.
fn run_fleet_arm(trace: &Trace, params: PreferenceParams, events_path: &PathBuf) -> SimReport {
    let sink = JsonlSink::create(events_path)
        .expect("create fleet event log")
        .with_meta(FleetMeta::new("obs-overhead", 0, 42));
    let mut policy = policy::nstd_p(Euclidean, params);
    Simulator::new(SimConfig::default())
        .with_parallelism(Parallelism::sequential())
        .with_recorder(Recorder::with_sink(Box::new(sink)))
        .with_slo(slo_specs())
        .run(trace, &mut policy)
}

/// Panics unless every dispatch-facing field of `b` matches `a`.
fn assert_dispatch_identical(label: &str, a: &SimReport, b: &SimReport) {
    let same = a.served == b.served
        && a.unserved_at_end == b.unserved_at_end
        && a.frames == b.frames
        && a.delays_min == b.delays_min
        && a.passenger_dissatisfaction == b.passenger_dissatisfaction
        && a.taxi_dissatisfaction == b.taxi_dissatisfaction
        && a.shared_requests == b.shared_requests
        && a.total_drive_km == b.total_drive_km
        && a.queue_by_frame == b.queue_by_frame
        && a.idle_by_frame == b.idle_by_frame
        && a.dispatch_errors == b.dispatch_errors;
    assert!(same, "{label}: recorder changed dispatch results");
}

fn main() {
    let opts = ExperimentOpts::from_args(0.02);
    let trace = o2o_trace::boston_september_2012(opts.scale).generate(opts.seed);
    let params = opts.params;
    let events_path = results_path("obs_events.jsonl");
    let fleet_path = results_path("obs_fleet_events.jsonl");

    // Correctness before timing: all four configurations must agree on
    // every dispatch-facing field, and the enabled arms' telemetry must
    // be internally consistent.
    let disabled = run_arm(&trace, params, Recorder::disabled());
    let memory = run_arm(&trace, params, Recorder::new());
    let sink = JsonlSink::create(&events_path).expect("create JSONL event log");
    let jsonl = run_arm(&trace, params, Recorder::with_sink(Box::new(sink)));
    let fleet = run_fleet_arm(&trace, params, &fleet_path);

    assert_dispatch_identical("memory", &disabled, &memory);
    assert_dispatch_identical("jsonl", &disabled, &jsonl);
    assert_dispatch_identical("fleet", &disabled, &fleet);
    assert!(disabled.stage_breakdown.is_empty());
    assert!(!jsonl.stage_breakdown.is_empty());
    assert!(
        fleet.slo_events.iter().any(o2o_sim::SloEvent::is_breach),
        "the 0 ms p50 ceiling must breach"
    );
    for fs in &jsonl.stage_breakdown.frames {
        let total = fs.total_stage_ms();
        assert!(
            total <= fs.wall_ms * 1.01 + 0.5,
            "frame {}: stage self-times {total} ms exceed wall {} ms",
            fs.frame,
            fs.wall_ms
        );
    }

    // Timing: disabled vs in-memory collection vs JSONL streaming vs
    // the full fleet stack, interleaved so machine noise hits all arms
    // alike. Each rep rewrites the event logs, so the files on disk
    // stay a single run's worth.
    let mut dis_ms = Vec::with_capacity(REPS);
    let mut mem_ms = Vec::with_capacity(REPS);
    let mut jsonl_ms = Vec::with_capacity(REPS);
    let mut fleet_ms = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::disabled()));
        dis_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::new()));
        mem_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let sink = JsonlSink::create(&events_path).expect("create JSONL event log");
        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::with_sink(Box::new(sink))));
        jsonl_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        std::hint::black_box(run_fleet_arm(&trace, params, &fleet_path));
        fleet_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let best = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    let (dis_best, mem_best) = (best(&dis_ms), best(&mem_ms));
    let (jsonl_best, fleet_best) = (best(&jsonl_ms), best(&fleet_ms));
    let overhead_ms = jsonl_best - dis_best;
    let overhead_pct = overhead_ms / dis_best * 100.0;
    let mem_overhead_pct = (mem_best - dis_best) / dis_best * 100.0;
    let fleet_overhead_ms = fleet_best - dis_best;
    let fleet_overhead_pct = fleet_overhead_ms / dis_best * 100.0;

    let threshold_pct = OBS_MAX_OVERHEAD_PCT.value();
    let within_budget = overhead_pct <= threshold_pct || overhead_ms <= ABS_SLACK_MS;
    assert!(
        within_budget,
        "observability overhead {overhead_pct:.2}% ({overhead_ms:.2} ms) exceeds \
         budget {threshold_pct}% and absolute slack {ABS_SLACK_MS} ms"
    );
    let fleet_within_budget =
        fleet_overhead_pct <= threshold_pct || fleet_overhead_ms <= ABS_SLACK_MS;
    assert!(
        fleet_within_budget,
        "fleet+SLO overhead {fleet_overhead_pct:.2}% ({fleet_overhead_ms:.2} ms) exceeds \
         budget {threshold_pct}% and absolute slack {ABS_SLACK_MS} ms"
    );

    let frames_recorded = jsonl.stage_breakdown.frames.len();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "frames",
        "disabled_ms",
        "memory_ms",
        "jsonl_ms",
        "fleet_ms",
        "overhead",
        "fleet_ovh",
        "budget"
    );
    println!(
        "{frames_recorded:>10} {dis_best:>12.2} {mem_best:>12.2} {jsonl_best:>12.2} \
         {fleet_best:>12.2} {overhead_pct:>9.2}% {fleet_overhead_pct:>9.2}% {threshold_pct:>7}%",
    );
    println!("event log: {}", events_path.display());

    emit_bench_json(
        "obs_overhead",
        &bench_envelope(
            "obs_overhead",
            &opts,
            vec![
                ("runs", REPS.into()),
                ("frames_recorded", frames_recorded.into()),
                ("best_disabled_ms", dis_best.into()),
                ("best_memory_ms", mem_best.into()),
                ("best_jsonl_ms", jsonl_best.into()),
                ("best_fleet_ms", fleet_best.into()),
                ("overhead_ms", overhead_ms.into()),
                ("overhead_pct", overhead_pct.into()),
                ("memory_overhead_pct", mem_overhead_pct.into()),
                ("fleet_overhead_ms", fleet_overhead_ms.into()),
                ("fleet_overhead_pct", fleet_overhead_pct.into()),
                ("fleet_slo_events", fleet.slo_events.len().into()),
                ("threshold_pct", threshold_pct.into()),
                ("abs_slack_ms", ABS_SLACK_MS.into()),
                ("within_budget", within_budget.into()),
                ("fleet_within_budget", fleet_within_budget.into()),
                ("dispatch_identical", true.into()),
                (
                    "stage_breakdown",
                    o2o_bench::stage_breakdown_json(&jsonl.stage_breakdown),
                ),
                ("events_jsonl", events_path.display().to_string().into()),
                (
                    "fleet_events_jsonl",
                    fleet_path.display().to_string().into(),
                ),
            ],
        ),
    );
}
