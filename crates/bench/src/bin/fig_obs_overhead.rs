//! Observability overhead: instrumented vs disabled recorder.
//!
//! Runs the same trace through the NSTD-P pipeline under three recorder
//! configurations:
//!
//! * **disabled** — [`Recorder::disabled`], the no-op handle; every
//!   telemetry call short-circuits on a `None` branch;
//! * **memory** — the engine's default collecting recorder (in-memory
//!   `StageBreakdown`, no sinks);
//! * **jsonl** — a recorder streaming every event to
//!   `results/obs_events.jsonl` through a buffered [`JsonlSink`].
//!
//! The arms are first asserted **bit-identical** on every
//! dispatch-facing report field — telemetry may never change results —
//! and the enabled arms' per-frame stage self-times are checked against
//! the frame wall-clock. Then the disabled and jsonl arms are timed
//! interleaved (best-of-`REPS`) and the relative overhead of full
//! instrumentation *with the event log enabled* is compared against a
//! budget: `O2O_OBS_MAX_OVERHEAD_PCT` (default 3%), with a small
//! absolute floor so reduced-scale CI runs, whose per-run wall-clock is
//! a few milliseconds, do not flake on timer noise.
//!
//! Output: `results/BENCH_obs_overhead.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts};
use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_par::Parallelism;
use o2o_sim::{policy, JsonlSink, Recorder, SimConfig, SimReport, Simulator};
use o2o_trace::Trace;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Interleaved timing repetitions per arm; best-of is reported. The
/// bench is cheap (tens of ms per run at default scale), so a generous
/// count keeps the min estimates stable on noisy shared runners.
const REPS: usize = 9;
/// Absolute slack (ms) under which the overhead check always passes.
/// At reduced CI scales a full run takes single-digit milliseconds and
/// a 3% relative budget would be far below timer resolution.
const ABS_SLACK_MS: f64 = 5.0;

/// The default relative overhead budget, in percent. Override with the
/// `O2O_OBS_MAX_OVERHEAD_PCT` environment variable.
const DEFAULT_MAX_OVERHEAD_PCT: f64 = 3.0;

fn results_path(file: &str) -> PathBuf {
    // crates/bench/ -> workspace root, as in `write_bench_json`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a workspace root");
    let dir = root.join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    dir.join(file)
}

fn run_arm(trace: &Trace, params: PreferenceParams, recorder: Recorder) -> SimReport {
    let mut policy = policy::nstd_p(Euclidean, params);
    Simulator::new(SimConfig::default())
        .with_parallelism(Parallelism::sequential())
        .with_recorder(recorder)
        .run(trace, &mut policy)
}

/// Panics unless every dispatch-facing field of `b` matches `a`.
fn assert_dispatch_identical(label: &str, a: &SimReport, b: &SimReport) {
    let same = a.served == b.served
        && a.unserved_at_end == b.unserved_at_end
        && a.frames == b.frames
        && a.delays_min == b.delays_min
        && a.passenger_dissatisfaction == b.passenger_dissatisfaction
        && a.taxi_dissatisfaction == b.taxi_dissatisfaction
        && a.shared_requests == b.shared_requests
        && a.total_drive_km == b.total_drive_km
        && a.queue_by_frame == b.queue_by_frame
        && a.idle_by_frame == b.idle_by_frame
        && a.dispatch_errors == b.dispatch_errors;
    assert!(same, "{label}: recorder changed dispatch results");
}

fn main() {
    let opts = ExperimentOpts::from_args(0.02);
    let trace = o2o_trace::boston_september_2012(opts.scale).generate(opts.seed);
    let params = opts.params;
    let events_path = results_path("obs_events.jsonl");

    // Correctness before timing: all three configurations must agree on
    // every dispatch-facing field, and the enabled arms' telemetry must
    // be internally consistent.
    let disabled = run_arm(&trace, params, Recorder::disabled());
    let memory = run_arm(&trace, params, Recorder::new());
    let sink = JsonlSink::create(&events_path).expect("create JSONL event log");
    let jsonl = run_arm(&trace, params, Recorder::with_sink(Box::new(sink)));

    assert_dispatch_identical("memory", &disabled, &memory);
    assert_dispatch_identical("jsonl", &disabled, &jsonl);
    assert!(disabled.stage_breakdown.is_empty());
    assert!(!jsonl.stage_breakdown.is_empty());
    for fs in &jsonl.stage_breakdown.frames {
        let total = fs.total_stage_ms();
        assert!(
            total <= fs.wall_ms * 1.01 + 0.5,
            "frame {}: stage self-times {total} ms exceed wall {} ms",
            fs.frame,
            fs.wall_ms
        );
    }

    // Timing: disabled vs in-memory collection vs the fully
    // instrumented arm (JSONL streaming), interleaved so machine noise
    // hits all arms alike. Each rep rewrites the event log, so the file
    // on disk stays a single run's worth.
    let mut dis_ms = Vec::with_capacity(REPS);
    let mut mem_ms = Vec::with_capacity(REPS);
    let mut jsonl_ms = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::disabled()));
        dis_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::new()));
        mem_ms.push(t.elapsed().as_secs_f64() * 1e3);

        let sink = JsonlSink::create(&events_path).expect("create JSONL event log");
        let t = Instant::now();
        std::hint::black_box(run_arm(&trace, params, Recorder::with_sink(Box::new(sink))));
        jsonl_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let best = |s: &[f64]| s.iter().copied().fold(f64::INFINITY, f64::min);
    let (dis_best, mem_best, jsonl_best) = (best(&dis_ms), best(&mem_ms), best(&jsonl_ms));
    let overhead_ms = jsonl_best - dis_best;
    let overhead_pct = overhead_ms / dis_best * 100.0;
    let mem_overhead_pct = (mem_best - dis_best) / dis_best * 100.0;

    let threshold_pct = std::env::var("O2O_OBS_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_OVERHEAD_PCT);
    let within_budget = overhead_pct <= threshold_pct || overhead_ms <= ABS_SLACK_MS;
    assert!(
        within_budget,
        "observability overhead {overhead_pct:.2}% ({overhead_ms:.2} ms) exceeds \
         budget {threshold_pct}% and absolute slack {ABS_SLACK_MS} ms"
    );

    let frames_recorded = jsonl.stage_breakdown.frames.len();
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "frames", "disabled_ms", "memory_ms", "jsonl_ms", "overhead", "budget"
    );
    println!(
        "{frames_recorded:>10} {dis_best:>12.2} {mem_best:>12.2} {jsonl_best:>12.2} \
         {overhead_pct:>9.2}% {threshold_pct:>7}%",
    );
    println!("event log: {}", events_path.display());

    emit_bench_json(
        "obs_overhead",
        &bench_envelope(
            "obs_overhead",
            &opts,
            vec![
                ("runs", REPS.into()),
                ("frames_recorded", frames_recorded.into()),
                ("best_disabled_ms", dis_best.into()),
                ("best_memory_ms", mem_best.into()),
                ("best_jsonl_ms", jsonl_best.into()),
                ("overhead_ms", overhead_ms.into()),
                ("overhead_pct", overhead_pct.into()),
                ("memory_overhead_pct", mem_overhead_pct.into()),
                ("threshold_pct", threshold_pct.into()),
                ("abs_slack_ms", ABS_SLACK_MS.into()),
                ("within_budget", within_budget.into()),
                ("dispatch_identical", true.into()),
                (
                    "stage_breakdown",
                    o2o_bench::stage_breakdown_json(&jsonl.stage_breakdown),
                ),
                ("events_jsonl", events_path.display().to_string().into()),
            ],
        ),
    );
}
