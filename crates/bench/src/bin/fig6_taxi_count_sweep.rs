//! Figure 6: average dispatch delay / passenger dissatisfaction / taxi
//! dissatisfaction vs the number of taxis, Boston trace, non-sharing.
//!
//! Paper shape: delays and passenger dissatisfaction fall as taxis grow;
//! NSTD's taxi-dissatisfaction advantage is largest when taxis are scarce
//! (taxis can then *choose* passengers).

use o2o_bench::{
    bench_envelope, emit_bench_json, policy_json, run_policies, run_sweep, ExperimentOpts, Json,
    PolicyKind,
};
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    // The paper sweeps the Boston fleet around its default 200. Sweep
    // points are independent runs, so they execute in parallel; results
    // come back in input order and are identical to the sequential loop.
    let paper_counts = [100usize, 150, 200, 250, 300, 350];
    let rows = run_sweep(paper_counts.to_vec(), |count| {
        let taxis = ((count as f64 * opts.scale).round() as usize).max(1);
        let trace = boston_september_2012(opts.scale)
            .taxis(taxis)
            .generate(opts.seed);
        eprintln!(
            "fig6: {count} paper-taxis -> {taxis} scaled, {} requests",
            trace.requests.len()
        );
        let reports = run_policies(
            &trace,
            &PolicyKind::NON_SHARING,
            opts.params,
            SimConfig::default(),
        );
        (count, reports)
    });

    let names: Vec<String> = rows[0].1.iter().map(|r| r.policy.clone()).collect();
    for (title, f) in [
        (
            "Fig 6(a): average dispatch delay (min) vs number of taxis",
            0usize,
        ),
        (
            "Fig 6(b): average passenger dissatisfaction (km) vs number of taxis",
            1,
        ),
        (
            "Fig 6(c): average taxi dissatisfaction (km) vs number of taxis",
            2,
        ),
    ] {
        println!("\n=== {title} ===");
        print!("{:>8}", "taxis");
        for n in &names {
            print!("{n:>10}");
        }
        println!();
        for (count, reports) in &rows {
            print!("{count:>8}");
            for r in reports {
                let v = match f {
                    0 => r.avg_delay_min(),
                    1 => r.avg_passenger_dissatisfaction(),
                    _ => r.avg_taxi_dissatisfaction(),
                };
                print!("{v:>10.3}");
            }
            println!();
        }
    }

    let json_rows = rows
        .iter()
        .map(|(count, reports)| {
            Json::obj(vec![
                ("paper_taxis", (*count).into()),
                (
                    "policies",
                    Json::Arr(reports.iter().map(policy_json).collect()),
                ),
            ])
        })
        .collect();
    emit_bench_json(
        "fig6_taxi_count_sweep",
        &bench_envelope(
            "fig6_taxi_count_sweep",
            &opts,
            vec![("rows", Json::Arr(json_rows))],
        ),
    );
}
