//! Perf-regression gate driver.
//!
//! ```text
//! bench baseline   # snapshot results/BENCH_*.json into results/baselines/
//! bench compare    # compare current results against the baselines
//! ```
//!
//! `compare` exits 0 with a warning when no baselines exist (the first
//! run of a fresh checkout has nothing to compare against — CI treats
//! that as advisory), and exits 1 when any directional metric regressed
//! beyond the noise-aware thresholds (see `o2o_bench::regress`). The
//! relative threshold defaults to 25% and is overridable with
//! `O2O_REGRESS_MAX_PCT` (see `o2o_bench::gates`).

use o2o_bench::regress::{self, CompareOptions};
use o2o_bench::{results_dir, REGRESS_MAX_PCT};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("baseline") => baseline(),
        Some("compare") => compare(),
        other => {
            eprintln!(
                "usage: bench <baseline|compare>\n\
                 \n\
                 baseline  snapshot results/BENCH_*.json into results/baselines/\n\
                 compare   compare current results against the snapshot\n\
                 {}",
                other.map_or(String::new(), |o| format!("\nunknown subcommand: {o}"))
            );
            std::process::exit(2);
        }
    }
}

fn baseline() {
    let dir = results_dir();
    match regress::snapshot_baselines(&dir) {
        Ok(copied) => {
            println!(
                "snapshotted {} file(s) into {}:",
                copied.len(),
                regress::baselines_dir(&dir).display()
            );
            for name in copied {
                println!("  {name}");
            }
        }
        Err(e) => {
            eprintln!("bench baseline: {e}");
            std::process::exit(1);
        }
    }
}

fn compare() {
    let dir = results_dir();
    let opts = CompareOptions {
        max_pct: REGRESS_MAX_PCT.value(),
        ..CompareOptions::default()
    };
    let comparisons = match regress::compare_results(&dir, &opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bench compare: {e}");
            std::process::exit(1);
        }
    };
    if comparisons.is_empty() {
        eprintln!(
            "bench compare: no baselines in {} — run `bench baseline` after a trusted run \
             to arm the gate (exiting 0)",
            regress::baselines_dir(&dir).display()
        );
        return;
    }
    let mut regressed = 0usize;
    for cmp in &comparisons {
        if cmp.missing_current {
            eprintln!(
                "  {}: baseline exists but the current run produced no file — skipped",
                cmp.file
            );
            continue;
        }
        let bad = regress::regressions(&cmp.deltas);
        println!(
            "  {}: {} metric(s) compared, {} regression(s)",
            cmp.file,
            cmp.deltas.len(),
            bad.len()
        );
        for d in bad {
            println!(
                "    REGRESSED {}: {:.3} -> {:.3} ({:+.1}% worse, limit {:.1}%)",
                d.path, d.baseline, d.current, d.worse_pct, opts.max_pct
            );
            regressed += 1;
        }
    }
    if regressed > 0 {
        eprintln!(
            "bench compare: {regressed} regression(s) beyond {:.1}% (override with {})",
            opts.max_pct, REGRESS_MAX_PCT.var
        );
        std::process::exit(1);
    }
    println!("bench compare: no regressions");
}
