//! Incremental cross-frame dispatch vs the cold per-frame pipeline.
//!
//! Replays rolling frame sequences — a fixed fleet whose taxis relocate
//! and whose requests turn over at a swept churn rate — through two
//! arms over a road-network metric:
//!
//! * **cold** (the previous pipeline): every frame clears the distance
//!   cache, rebuilds the idle-taxi grid from scratch and runs deferred
//!   acceptance cold;
//! * **warm** (the incremental pipeline): the distance cache persists
//!   across frames (stale origins swept past a capacity bound), the grid
//!   is delta-synced, unchanged requests patch their candidate rows from
//!   the previous frame instead of re-querying grid and metric, and
//!   deferred acceptance is warm-started from the previous frame's
//!   matching.
//!
//! Every frame of every row first asserts the warm schedule **equal** to
//! the cold one — the speedup is exact, not approximate. Reported per
//! row: frame-loop wall-clock for both arms, the speedup, and the warm
//! arm's cross-frame distance-cache hit rate.
//!
//! Output: `results/BENCH_incremental.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts, Json};
use o2o_core::{build_taxi_grid, IncrementalState, NonSharingDispatcher, PreferenceParams};
use o2o_geo::{heuristic_cell_size, BBox, DistanceCache, IncrementalGrid, Point, RoadNetwork};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Persistent-cache capacity before a stale-origin sweep (entries).
/// Kept near the per-frame working set on purpose: past it the map
/// outgrows the fast cache levels and every hit pays a DRAM probe,
/// eroding exactly the latency the persistent cache exists to save.
const CACHE_CAP: usize = 100_000;
/// Grid churn fraction above which the delta sync falls back to rebuild.
const GRID_REBUILD_THRESHOLD: f64 = 0.35;

/// A rolling frame sequence: each frame, every taxi relocates with
/// probability `churn` (dispatched away and returned elsewhere) and every
/// request is replaced by a fresh arrival with probability `churn`
/// (served; a new passenger appears). At churn 0 everything is
/// stationary; at churn 1 every frame is brand new.
fn rolling_frames(
    seed: u64,
    frames: usize,
    n_taxis: usize,
    n_requests: usize,
    side: f64,
    churn: f64,
) -> Vec<(Vec<Taxi>, Vec<Request>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |rng: &mut StdRng| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
    let mut taxis: Vec<Taxi> = (0..n_taxis)
        .map(|i| Taxi::new(TaxiId(i as u64), pt(&mut rng)))
        .collect();
    let mut next_id = n_requests as u64;
    let new_request = |rng: &mut StdRng, id: u64| {
        let pickup = pt(rng);
        let len = rng.gen_range(1.0..6.0);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let dropoff = Point::new(pickup.x + len * angle.cos(), pickup.y + len * angle.sin());
        Request::new(RequestId(id), 0, pickup, dropoff)
    };
    let mut requests: Vec<Request> = (0..n_requests as u64)
        .map(|j| new_request(&mut rng, j))
        .collect();

    let mut out = Vec::with_capacity(frames);
    for _ in 0..frames {
        out.push((taxis.clone(), requests.clone()));
        for t in &mut taxis {
            if rng.gen_bool(churn) {
                t.location = pt(&mut rng);
            }
        }
        for r in &mut requests {
            if rng.gen_bool(churn) {
                *r = new_request(&mut rng, next_id);
                next_id += 1;
            }
        }
    }
    out
}

type Cache = Arc<DistanceCache<Arc<RoadNetwork>>>;

fn fresh_arm(
    net: &Arc<RoadNetwork>,
    params: PreferenceParams,
) -> (Cache, NonSharingDispatcher<Cache>) {
    let cache = Arc::new(DistanceCache::new(Arc::clone(net)));
    let d = NonSharingDispatcher::new(Arc::clone(&cache), params);
    (cache, d)
}

/// The previous pipeline: per-frame cache clear, fresh grid, cold DA.
/// Returns the schedules and the total metric queries issued.
fn run_cold(
    net: &Arc<RoadNetwork>,
    params: PreferenceParams,
    frames: &[(Vec<Taxi>, Vec<Request>)],
) -> (Vec<o2o_core::Schedule>, u64) {
    let (cache, d) = fresh_arm(net, params);
    let out = frames
        .iter()
        .map(|(taxis, requests)| {
            cache.clear();
            let grid = build_taxi_grid(taxis);
            d.passenger_optimal_with_grid(taxis, requests, Some(&grid))
        })
        .collect();
    let stats = cache.stats();
    (out, stats.hits + stats.misses)
}

/// The incremental pipeline: persistent swept cache, delta-synced grid,
/// carried candidate rows, warm-started DA. Returns the schedules, the
/// final cache hit rate, and the total metric queries issued (the carry
/// answers unchanged pairs from the previous frame's rows without
/// touching the cache at all, so the query count — not just the hit rate
/// — is the incremental story).
fn run_warm(
    net: &Arc<RoadNetwork>,
    params: PreferenceParams,
    frames: &[(Vec<Taxi>, Vec<Request>)],
) -> (Vec<o2o_core::Schedule>, f64, u64) {
    let (cache, d) = fresh_arm(net, params);
    let mut state = IncrementalState::new();
    let mut inc: IncrementalGrid<usize> = IncrementalGrid::new(GRID_REBUILD_THRESHOLD);
    let mut desired: Vec<(usize, Point)> = Vec::new();
    let out = frames
        .iter()
        .map(|(taxis, requests)| {
            if cache.len() > CACHE_CAP {
                let live: HashSet<(u64, u64)> = taxis
                    .iter()
                    .map(|t| DistanceCache::<Arc<RoadNetwork>>::origin_key(t.location))
                    .chain(requests.iter().flat_map(|r| {
                        [
                            DistanceCache::<Arc<RoadNetwork>>::origin_key(r.pickup),
                            DistanceCache::<Arc<RoadNetwork>>::origin_key(r.dropoff),
                        ]
                    }))
                    .collect();
                cache.sweep_stale(&live);
            }
            // The fleet is index-stable here, so grid payloads are the
            // slice indices directly (the engine remaps fleet indices to
            // idle ranks; with everyone idle the map is the identity).
            desired.clear();
            desired.extend(taxis.iter().enumerate().map(|(i, t)| (i, t.location)));
            let bbox = BBox::from_points(taxis.iter().map(|t| t.location))
                .unwrap_or_else(|| BBox::square(Point::ORIGIN, 1.0));
            inc.sync(bbox, heuristic_cell_size(bbox), &desired);
            let grid = inc.grid().expect("grid present after sync");
            d.passenger_optimal_incremental(taxis, requests, Some(grid), &mut state)
        })
        .collect();
    let stats = cache.stats();
    (out, stats.hit_rate(), stats.hits + stats.misses)
}

/// Times `a` and `b` interleaved (a, b, a, b, …) so slow phases of a
/// shared machine hit both arms alike; returns each arm's
/// `(min, median)` in milliseconds.
fn time_pair_ms(reps: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> ((f64, f64), (f64, f64)) {
    let mut sa = Vec::with_capacity(reps);
    let mut sb = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        a();
        sa.push(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        b();
        sb.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let summarize = |s: &mut Vec<f64>| {
        s.sort_by(|x, y| x.partial_cmp(y).expect("finite timings"));
        (s[0], s[s.len() / 2])
    };
    (summarize(&mut sa), summarize(&mut sb))
}

fn main() {
    let opts = ExperimentOpts::from_args(1.0);
    let n_taxis = (250.0 * opts.scale) as usize;
    let n_requests = (200.0 * opts.scale) as usize;
    let side = 18.0;
    let params = opts.params;

    let frame_counts = [20usize, 40];
    let churns = [0.0f64, 0.05, 0.10, 0.25, 0.50];

    println!(
        "{:>7} {:>7} {:>10} {:>9} {:>9} {:>12} {:>12} {:>8} {:>9}",
        "frames", "churn", "hit_rate", "q_cold", "q_warm", "cold_ms", "warm_ms", "speedup", "exact"
    );
    let mut rows = Vec::new();
    for (fi, &frames) in frame_counts.iter().enumerate() {
        for (ci, &churn) in churns.iter().enumerate() {
            let seed = opts.seed.wrapping_add((fi * churns.len() + ci) as u64);
            let seq = rolling_frames(seed, frames, n_taxis, n_requests, side, churn);
            // A synthetic street grid, rebuilt per row so its internal
            // shortest-path memo starts identically for every row; road
            // distances make every cache miss pay a genuine query, as in
            // the trace-driven figures.
            let net = Arc::new(RoadNetwork::grid(25, 25, side / 24.0));

            // Exactness first: the warm pipeline must be bit-identical to
            // the cold one on every frame.
            let (cold_schedules, cold_queries) = run_cold(&net, params, &seq);
            let (warm_schedules, hit_rate, warm_queries) = run_warm(&net, params, &seq);
            assert_eq!(
                warm_schedules, cold_schedules,
                "warm diverged from cold at frames={frames} churn={churn}"
            );

            let ((cold_min, cold_med), (warm_min, warm_med)) = time_pair_ms(
                5,
                || {
                    std::hint::black_box(run_cold(&net, params, &seq));
                },
                || {
                    std::hint::black_box(run_warm(&net, params, &seq));
                },
            );
            let speedup = cold_min / warm_min;
            println!(
                "{frames:>7} {churn:>7.2} {hit_rate:>10.4} {cold_queries:>9} {warm_queries:>9} \
                 {cold_min:>12.2} {warm_min:>12.2} {speedup:>8.2} {:>9}",
                "yes"
            );
            rows.push(Json::obj(vec![
                ("frames", frames.into()),
                ("churn", churn.into()),
                ("n_taxis", n_taxis.into()),
                ("n_requests", n_requests.into()),
                ("cache_hit_rate", hit_rate.into()),
                ("cold_queries", cold_queries.into()),
                ("warm_queries", warm_queries.into()),
                ("cold_ms_min", cold_min.into()),
                ("cold_ms_median", cold_med.into()),
                ("warm_ms_min", warm_min.into()),
                ("warm_ms_median", warm_med.into()),
                ("speedup_min", speedup.into()),
                ("schedules_match", true.into()),
            ]));
        }
    }

    emit_bench_json(
        "incremental",
        &bench_envelope("incremental", &opts, vec![("rows", Json::Arr(rows))]),
    );
}
