//! Hot-path pass: per-frame dispatch wall-clock for the flattened
//! pipeline (CSR rank tables + scratch arenas + batched distance
//! kernels + warm starts) against the cold pipelines it replaced.
//!
//! Replays rolling frame sequences (fixed fleet, churned locations and
//! request turnover) at the paper's thresholds and measures each frame's
//! dispatch wall-clock — the quantity the engine reports as
//! `frame.dispatch_ms` — under three arms:
//!
//! * **dense_cold** — dense candidate generation, fresh grid, cold
//!   deferred acceptance every frame (the pre-sparse pipeline);
//! * **sparse_cold** — threshold-pruned candidates, fresh grid, cold
//!   deferred acceptance every frame;
//! * **hot** — threshold-pruned candidates over the batched distance
//!   kernel, delta-synced grid, carried candidate rows, warm-started
//!   deferred acceptance through the reusable dispatch scratch arena.
//!
//! Every frame of every row first asserts all three schedules **equal**
//! — the speedup is exact, not approximate. Two further sections isolate
//! the matching layer (rank-table build + propose for the hashmap
//! reference, CSR and dense layouts on the same frame-derived lists) and
//! the anytime NSTD-T enumeration (measured optimality gap per node
//! budget, with the unlimited run asserted equal to `taxi_optimal`).
//!
//! Output: `results/BENCH_hot_path.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts, Json};
use o2o_core::{
    build_taxi_grid, CandidateMode, IncrementalState, NonSharingDispatcher, PreferenceParams,
};
use o2o_geo::{heuristic_cell_size, BBox, Euclidean, IncrementalGrid, Metric, Point};
use o2o_matching::{MatchScratch, PreferenceError, StableInstance, TimeBudgetSpec};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Grid churn fraction above which the delta sync falls back to rebuild.
const GRID_REBUILD_THRESHOLD: f64 = 0.35;
/// Per-frame taxi relocation / request turnover probability.
const CHURN: f64 = 0.15;
/// Frames per rolling sequence.
const FRAMES: usize = 8;

/// One frame's policy-visible sets: the idle taxis and pending requests.
type Frame = (Vec<Taxi>, Vec<Request>);

/// A rolling frame sequence over a square city whose side keeps taxi
/// density constant as `n` grows (20 km at 250 taxis), as in the
/// sparse-scaling figure; trips are urban-length so the dummy bounds
/// prune exactly as in the real workload.
fn rolling_frames(seed: u64, n: usize, m: usize) -> (Vec<Frame>, f64) {
    let side = 20.0 * (n as f64 / 250.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(-side / 2.0..side / 2.0),
            rng.gen_range(-side / 2.0..side / 2.0),
        )
    };
    let new_request = |rng: &mut StdRng, id: u64| {
        let pickup = pt(rng);
        let len = rng.gen_range(1.0..6.0);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let dropoff = Point::new(pickup.x + len * angle.cos(), pickup.y + len * angle.sin());
        Request::new(RequestId(id), 0, pickup, dropoff)
    };
    let mut taxis: Vec<Taxi> = (0..n)
        .map(|i| Taxi::new(TaxiId(i as u64), pt(&mut rng)))
        .collect();
    let mut requests: Vec<Request> = (0..m as u64).map(|j| new_request(&mut rng, j)).collect();
    let mut next_id = m as u64;
    let mut out = Vec::with_capacity(FRAMES);
    for _ in 0..FRAMES {
        out.push((taxis.clone(), requests.clone()));
        for t in &mut taxis {
            if rng.gen_bool(CHURN) {
                t.location = pt(&mut rng);
            }
        }
        for r in &mut requests {
            if rng.gen_bool(CHURN) {
                *r = new_request(&mut rng, next_id);
                next_id += 1;
            }
        }
    }
    (out, side)
}

/// Runs a cold arm over the sequence, pushing one per-frame dispatch
/// time (ms) per frame into `samples`; returns the schedules.
fn run_cold(
    d: &NonSharingDispatcher<Euclidean>,
    seq: &[Frame],
    samples: &mut Vec<f64>,
) -> Vec<o2o_core::Schedule> {
    seq.iter()
        .map(|(taxis, requests)| {
            let t = Instant::now();
            let grid = build_taxi_grid(taxis);
            let s = d.passenger_optimal_with_grid(taxis, requests, Some(&grid));
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            s
        })
        .collect()
}

/// Runs the hot arm (delta-synced grid, carried rows, warm starts,
/// scratch arena) over the sequence; per-frame times into `samples`.
fn run_hot(
    d: &NonSharingDispatcher<Euclidean>,
    seq: &[Frame],
    samples: &mut Vec<f64>,
) -> Vec<o2o_core::Schedule> {
    let mut state = IncrementalState::new();
    let mut inc: IncrementalGrid<usize> = IncrementalGrid::new(GRID_REBUILD_THRESHOLD);
    let mut desired: Vec<(usize, Point)> = Vec::new();
    seq.iter()
        .map(|(taxis, requests)| {
            let t = Instant::now();
            desired.clear();
            desired.extend(taxis.iter().enumerate().map(|(i, t)| (i, t.location)));
            let bbox = BBox::from_points(taxis.iter().map(|t| t.location))
                .unwrap_or_else(|| BBox::square(Point::ORIGIN, 1.0));
            inc.sync(bbox, heuristic_cell_size(bbox), &desired);
            let grid = inc.grid().expect("grid present after sync");
            let s = d.passenger_optimal_incremental(taxis, requests, Some(grid), &mut state);
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            s
        })
        .collect()
}

fn summarize(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[0], samples[samples.len() / 2])
}

/// Frame-derived truncated preference lists mirroring the sparse
/// candidate model: a `(request, taxi)` pair is a candidate when the
/// pick-up distance clears the passenger threshold **and** the driver
/// score `d − α·trip` clears the taxi threshold (non-mutual pairs can
/// never match or block, so the dispatch path drops them too). Requests
/// rank candidates by distance, taxis by score. The same lists feed all
/// three rank-table layouts.
fn frame_lists(
    params: &PreferenceParams,
    taxis: &[Taxi],
    requests: &[Request],
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let by_key = |mut v: Vec<(f64, usize)>| -> Vec<usize> {
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
        v.into_iter().map(|(_, i)| i).collect()
    };
    let candidate = |r: &Request, t: &Taxi| -> Option<(f64, f64)> {
        let d = Euclidean.distance(r.pickup, t.location);
        let score = d - params.alpha * r.trip_distance(&Euclidean);
        (d <= params.passenger_threshold && score <= params.taxi_threshold).then_some((d, score))
    };
    let p_lists = requests
        .iter()
        .map(|r| {
            by_key(
                taxis
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| candidate(r, t).map(|(d, _)| (d, i)))
                    .collect(),
            )
        })
        .collect();
    let r_lists = taxis
        .iter()
        .map(|t| {
            by_key(
                requests
                    .iter()
                    .enumerate()
                    .filter_map(|(j, r)| candidate(r, t).map(|(_, s)| (s, j)))
                    .collect(),
            )
        })
        .collect();
    (p_lists, r_lists)
}

fn main() {
    let opts = ExperimentOpts::from_args(1.0);
    let params = opts.params;
    let sizes = [(500, 500), (1000, 1000), (2000, 2000)];

    println!(
        "{:>6} {:>6} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "|T|", "|R|", "city_km", "dense_ms", "sparse_ms", "hot_ms", "x_dense", "x_sparse"
    );
    let mut rows = Vec::new();
    for (ci, &(n0, m0)) in sizes.iter().enumerate() {
        let n = ((n0 as f64 * opts.scale).round() as usize).max(8);
        let m = ((m0 as f64 * opts.scale).round() as usize).max(8);
        let (seq, side) = rolling_frames(opts.seed.wrapping_add(ci as u64), n, m);
        let dense = NonSharingDispatcher::new(Euclidean, params)
            .with_candidate_mode(CandidateMode::Dense)
            .with_parallelism(Parallelism::auto());
        let sparse = NonSharingDispatcher::new(Euclidean, params)
            .with_candidate_mode(CandidateMode::Sparse)
            .with_parallelism(Parallelism::auto());

        // Exactness first: all three arms, bit for bit, on every frame.
        let mut scrap = Vec::new();
        let s_dense = run_cold(&dense, &seq, &mut scrap);
        assert_eq!(
            run_cold(&sparse, &seq, &mut scrap),
            s_dense,
            "sparse-cold diverged from dense at {n}x{m}"
        );
        assert_eq!(
            run_hot(&sparse, &seq, &mut scrap),
            s_dense,
            "hot diverged from dense at {n}x{m}"
        );

        let reps = if n >= 1000 { 2 } else { 4 };
        let (mut sd, mut ss, mut sh) = (Vec::new(), Vec::new(), Vec::new());
        // Interleaved so slow phases of a shared machine hit all arms
        // alike; per-frame samples pool across reps.
        for _ in 0..reps {
            std::hint::black_box(run_cold(&dense, &seq, &mut sd));
            std::hint::black_box(run_cold(&sparse, &seq, &mut ss));
            std::hint::black_box(run_hot(&sparse, &seq, &mut sh));
        }
        let (dense_min, dense_med) = summarize(&mut sd);
        let (sparse_min, sparse_med) = summarize(&mut ss);
        let (hot_min, hot_med) = summarize(&mut sh);
        let x_dense = dense_med / hot_med;
        let x_sparse = sparse_med / hot_med;
        println!(
            "{n:>6} {m:>6} {side:>7.1} {dense_med:>12.3} {sparse_med:>12.3} {hot_med:>12.3} \
             {x_dense:>9.2} {x_sparse:>9.2}"
        );
        rows.push(Json::obj(vec![
            ("n_taxis", n.into()),
            ("n_requests", m.into()),
            ("city_km", side.into()),
            ("frames", FRAMES.into()),
            ("churn", CHURN.into()),
            ("dense_ms_min", dense_min.into()),
            ("dense_ms_median", dense_med.into()),
            ("sparse_cold_ms_min", sparse_min.into()),
            ("sparse_cold_ms_median", sparse_med.into()),
            ("hot_ms_min", hot_min.into()),
            ("hot_ms_median", hot_med.into()),
            ("speedup_median_vs_dense", x_dense.into()),
            ("speedup_median_vs_sparse_cold", x_sparse.into()),
            ("schedules_match", true.into()),
        ]));
    }

    // ── Matching layer: rank-table layouts on the same lists ──────────
    // Build + propose for the hashmap reference, CSR, and dense layouts,
    // plus CSR through the reusable scratch arena, all on preference
    // lists derived from the largest frame.
    let (n0, m0) = sizes[sizes.len() - 1];
    let n = ((n0 as f64 * opts.scale).round() as usize).max(8);
    let m = ((m0 as f64 * opts.scale).round() as usize).max(8);
    let (seq, _) = rolling_frames(opts.seed.wrapping_add(99), n, m);
    let (p_lists, r_lists) = frame_lists(&params, &seq[0].0, &seq[0].1);
    type LayoutCtor =
        fn(Vec<Vec<usize>>, Vec<Vec<usize>>) -> Result<StableInstance, PreferenceError>;
    let layouts: [(&str, LayoutCtor); 3] = [
        ("hashmap", StableInstance::new_sparse_reference),
        ("csr", StableInstance::new_sparse),
        ("dense", StableInstance::new),
    ];
    let mut matching_rows = Vec::new();
    println!(
        "\n{:>8} {:>12} {:>12} {:>14}",
        "layout", "build_ms", "propose_ms", "propose_arena"
    );
    for (label, build) in layouts {
        let reps = 9;
        let mut build_ms = Vec::with_capacity(reps);
        let mut propose_ms = Vec::with_capacity(reps);
        let mut arena_ms = Vec::with_capacity(reps);
        let mut scratch = MatchScratch::new();
        for _ in 0..reps {
            let (p, r) = (p_lists.clone(), r_lists.clone());
            let t = Instant::now();
            let inst = build(p, r).expect("frame-derived lists are valid");
            build_ms.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            std::hint::black_box(inst.propose());
            propose_ms.push(t.elapsed().as_secs_f64() * 1e3);
            let t = Instant::now();
            let warm = inst.propose_with(&mut scratch);
            arena_ms.push(t.elapsed().as_secs_f64() * 1e3);
            scratch.recycle(warm);
        }
        let (_, build_med) = summarize(&mut build_ms);
        let (_, propose_med) = summarize(&mut propose_ms);
        let (_, arena_med) = summarize(&mut arena_ms);
        println!("{label:>8} {build_med:>12.3} {propose_med:>12.3} {arena_med:>14.3}");
        matching_rows.push(Json::obj(vec![
            ("layout", label.into()),
            ("n_proposers", p_lists.len().into()),
            ("n_reviewers", r_lists.len().into()),
            ("build_ms_median", build_med.into()),
            ("propose_ms_median", propose_med.into()),
            ("propose_arena_ms_median", arena_med.into()),
        ]));
    }

    // ── Anytime NSTD-T: measured optimality gap per node budget ───────
    let (seq, _) = rolling_frames(opts.seed.wrapping_add(7), n.min(400), m.min(400));
    let (taxis, requests) = &seq[0];
    let sparse = NonSharingDispatcher::new(Euclidean, params)
        .with_candidate_mode(CandidateMode::Sparse)
        .with_parallelism(Parallelism::auto());
    let exact = sparse.taxi_optimal(taxis, requests);
    let mut anytime_rows = Vec::new();
    println!(
        "\n{:>10} {:>10} {:>10} {:>6} {:>10} {:>9}",
        "node_cap", "taxi_cost", "bound", "gap", "nodes", "truncated"
    );
    for cap in [Some(0u64), Some(4), Some(32), Some(256), Some(2048), None] {
        let budget = match cap {
            Some(c) => TimeBudgetSpec::unlimited().with_node_cap(c).start(),
            None => o2o_matching::TimeBudget::unlimited(),
        };
        let t = Instant::now();
        let (schedule, outcome) = sparse.taxi_optimal_anytime(taxis, requests, None, &budget);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if cap.is_none() {
            assert_eq!(
                schedule, exact,
                "unlimited anytime diverged from taxi_optimal"
            );
            assert!(!outcome.truncated, "unlimited anytime reported truncation");
        }
        let cap_label = cap.map_or("inf".to_string(), |c| c.to_string());
        println!(
            "{cap_label:>10} {:>10} {:>10} {:>6} {:>10} {:>9}",
            outcome.taxi_cost,
            outcome.lower_bound,
            outcome.gap(),
            outcome.nodes,
            outcome.truncated
        );
        anytime_rows.push(Json::obj(vec![
            ("node_cap", cap.map_or(Json::Null, Json::from)),
            ("taxi_cost", outcome.taxi_cost.into()),
            ("lower_bound", outcome.lower_bound.into()),
            ("gap", outcome.gap().into()),
            ("nodes", outcome.nodes.into()),
            ("truncated", outcome.truncated.into()),
            ("ms", ms.into()),
            ("matches_taxi_optimal", (schedule == exact).into()),
        ]));
    }

    emit_bench_json(
        "hot_path",
        &bench_envelope(
            "hot_path",
            &opts,
            vec![
                ("rows", Json::Arr(rows)),
                ("matching_layer", Json::Arr(matching_rows)),
                ("anytime", Json::Arr(anytime_rows)),
            ],
        ),
    );
}
