//! Design-choice ablations (DESIGN.md §5): each block varies one knob of
//! the paper's model on the Boston trace and prints the three metrics.
//!
//! 1. **Dummy thresholds** — the taxi-side cut-off θ_t is the lever behind
//!    NSTD's taxi-satisfaction win and its delay penalty.
//! 2. **α** — the driver pay-off weight; α = 0 collapses driver
//!    preferences onto pick-up distance.
//! 3. **θ** — the sharing detour budget controls how much packs.
//! 4. **Packing strategy** — greedy vs local-search packing quality and
//!    its effect on end-to-end sharing dispatch.
//! 5. **NSTD-T via role swap vs Algorithm 2 enumeration** — equivalence
//!    check plus how often several stable schedules exist at all.

use o2o_bench::{
    bench_envelope, emit_bench_json, policy_json, run_policies, run_sweep, ExperimentOpts, Json,
    PolicyKind,
};
use o2o_core::{NonSharingDispatcher, PackingObjective, SharingConfig, SharingDispatcher};
use o2o_geo::Euclidean;
use o2o_matching::SetPackingStrategy;
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "ablations: {} requests, {} taxis",
        trace.requests.len(),
        trace.taxis.len()
    );
    let cfg = SimConfig::default();

    // Ablations 1–3 sweep independent parameter values; each sweep runs
    // its points in parallel and prints once all are back (row order is
    // the input order, and each point's result is identical to the
    // sequential loop's).
    let trace_ref = &trace;
    let tt_rows = run_sweep(vec![0.5, 1.0, 2.0, 4.0, 8.0, f64::INFINITY], |tt| {
        let params = opts.params.with_taxi_threshold(tt);
        let r = run_policies(trace_ref, &[PolicyKind::NstdP], params, cfg).remove(0);
        (tt, r)
    });
    println!("\n### Ablation 1: taxi dummy threshold θ_t (NSTD-P)");
    println!(
        "{:>8} {:>12} {:>8} {:>12} {:>10} {:>9}",
        "θ_t", "delay(min)", "<=1min", "pass-dis", "taxi-dis", "unserved"
    );
    for (tt, r) in &tt_rows {
        println!(
            "{:>8.1} {:>12.2} {:>8.3} {:>12.3} {:>10.3} {:>9}",
            tt,
            r.avg_delay_min(),
            r.delay_cdf().fraction_at_most(1.0),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.unserved_at_end,
        );
    }

    let alpha_rows = run_sweep(vec![0.0, 0.5, 1.0, 2.0], |alpha| {
        let params = opts.params.with_alpha(alpha);
        let r = run_policies(trace_ref, &[PolicyKind::NstdP], params, cfg).remove(0);
        (alpha, r)
    });
    println!("\n### Ablation 2: driver pay-off weight α (NSTD-P)");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "α", "delay(min)", "pass-dis", "taxi-dis"
    );
    for (alpha, r) in &alpha_rows {
        println!(
            "{:>8.1} {:>12.2} {:>12.3} {:>10.3}",
            alpha,
            r.avg_delay_min(),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
        );
    }

    let theta_rows = run_sweep(vec![1.0, 2.5, 5.0, 10.0], |theta| {
        let params = opts.params.with_detour_threshold(theta);
        let r = run_policies(trace_ref, &[PolicyKind::StdP], params, cfg).remove(0);
        (theta, r)
    });
    println!("\n### Ablation 3: sharing detour budget θ (STD-P)");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12}",
        "θ", "delay(min)", "pass-dis", "taxi-dis", "share-rate"
    );
    for (theta, r) in &theta_rows {
        println!(
            "{:>8.1} {:>12.2} {:>12.3} {:>10.3} {:>12.3}",
            theta,
            r.avg_delay_min(),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.sharing_rate(),
        );
    }

    println!("\n### Ablation 4: set-packing strategy (Algorithm 3 stage 2)");
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "strategy", "groups", "packed-req", "share-rate"
    );
    let batch: Vec<_> = trace.requests_between(8 * 3600, 8 * 3600 + 600).to_vec();
    let mut packing_rows: Vec<(&str, usize, usize, f64)> = Vec::new();
    for (name, strategy, objective) in [
        (
            "greedy",
            SetPackingStrategy::Greedy,
            PackingObjective::GroupCount,
        ),
        (
            "local",
            SetPackingStrategy::LocalSearch,
            PackingObjective::GroupCount,
        ),
        (
            "coverage",
            SetPackingStrategy::LocalSearch,
            PackingObjective::CoveredRequests,
        ),
    ] {
        let d = SharingDispatcher::with_config(
            Euclidean,
            opts.params,
            SharingConfig {
                packing: strategy,
                objective,
                ..SharingConfig::default()
            },
        );
        let metas = d.pack(&batch);
        let groups = metas.iter().filter(|g| g.len() >= 2).count();
        let packed: usize = metas.iter().filter(|g| g.len() >= 2).map(Vec::len).sum();
        let rate = packed as f64 / batch.len().max(1) as f64;
        println!("{name:>12} {groups:>8} {packed:>12} {rate:>12.3}");
        packing_rows.push((name, groups, packed, rate));
    }

    println!("\n### Ablation 5: NSTD-T via role swap vs Algorithm 2 enumeration");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let d = NonSharingDispatcher::new(Euclidean, opts.params);
    let mut frames = 0usize;
    let mut multi = 0usize;
    let mut agree = 0usize;
    for _ in 0..200 {
        let start = rng.gen_range(0..20 * 3600);
        let batch: Vec<_> = trace
            .requests_between(start, start + 300)
            .iter()
            .take(8)
            .copied()
            .collect();
        let taxis: Vec<_> = trace.taxis.iter().take(6).copied().collect();
        if batch.is_empty() {
            continue;
        }
        frames += 1;
        let all = d.all_schedules(&taxis, &batch, None);
        if all.len() > 1 {
            multi += 1;
        }
        let swap = d.taxi_optimal(&taxis, &batch);
        let best = all
            .iter()
            .min_by(|a, b| {
                a.total_taxi_dissatisfaction()
                    .partial_cmp(&b.total_taxi_dissatisfaction())
                    .unwrap()
            })
            .expect("non-empty");
        if (swap.total_taxi_dissatisfaction() - best.total_taxi_dissatisfaction()).abs() < 1e-9 {
            agree += 1;
        }
    }
    println!(
        "{frames} frames sampled; {multi} had >1 stable schedule; \
         role-swap matched enumeration's taxi-best in {agree}/{frames}"
    );

    let sweep_json = |key: &str, rows: &[(f64, o2o_sim::SimReport)]| {
        Json::Arr(
            rows.iter()
                .map(|(v, r)| Json::obj(vec![(key, (*v).into()), ("report", policy_json(r))]))
                .collect(),
        )
    };
    emit_bench_json(
        "ablations",
        &bench_envelope(
            "ablations",
            &opts,
            vec![
                (
                    "taxi_threshold_sweep",
                    sweep_json("taxi_threshold", &tt_rows),
                ),
                ("alpha_sweep", sweep_json("alpha", &alpha_rows)),
                ("detour_sweep", sweep_json("detour_threshold", &theta_rows)),
                (
                    "packing_strategies",
                    Json::Arr(
                        packing_rows
                            .iter()
                            .map(|(name, groups, packed, rate)| {
                                Json::obj(vec![
                                    ("strategy", (*name).into()),
                                    ("groups", (*groups).into()),
                                    ("packed_requests", (*packed).into()),
                                    ("coverage", (*rate).into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "nstd_t_equivalence",
                    Json::obj(vec![
                        ("frames", frames.into()),
                        ("multi_stable", multi.into()),
                        ("role_swap_agrees", agree.into()),
                    ]),
                ),
            ],
        ),
    );
}
