//! Design-choice ablations (DESIGN.md §5): each block varies one knob of
//! the paper's model on the Boston trace and prints the three metrics.
//!
//! 1. **Dummy thresholds** — the taxi-side cut-off θ_t is the lever behind
//!    NSTD's taxi-satisfaction win and its delay penalty.
//! 2. **α** — the driver pay-off weight; α = 0 collapses driver
//!    preferences onto pick-up distance.
//! 3. **θ** — the sharing detour budget controls how much packs.
//! 4. **Packing strategy** — greedy vs local-search packing quality and
//!    its effect on end-to-end sharing dispatch.
//! 5. **NSTD-T via role swap vs Algorithm 2 enumeration** — equivalence
//!    check plus how often several stable schedules exist at all.

use o2o_bench::{run_policies, ExperimentOpts, PolicyKind};
use o2o_core::{NonSharingDispatcher, PackingObjective, SharingConfig, SharingDispatcher};
use o2o_geo::Euclidean;
use o2o_matching::SetPackingStrategy;
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "ablations: {} requests, {} taxis",
        trace.requests.len(),
        trace.taxis.len()
    );
    let cfg = SimConfig::default();

    println!("\n### Ablation 1: taxi dummy threshold θ_t (NSTD-P)");
    println!(
        "{:>8} {:>12} {:>8} {:>12} {:>10} {:>9}",
        "θ_t", "delay(min)", "<=1min", "pass-dis", "taxi-dis", "unserved"
    );
    for tt in [0.5, 1.0, 2.0, 4.0, 8.0, f64::INFINITY] {
        let params = opts.params.with_taxi_threshold(tt);
        let r = &run_policies(&trace, &[PolicyKind::NstdP], params, cfg)[0];
        println!(
            "{:>8.1} {:>12.2} {:>8.3} {:>12.3} {:>10.3} {:>9}",
            tt,
            r.avg_delay_min(),
            r.delay_cdf().fraction_at_most(1.0),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.unserved_at_end,
        );
    }

    println!("\n### Ablation 2: driver pay-off weight α (NSTD-P)");
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "α", "delay(min)", "pass-dis", "taxi-dis"
    );
    for alpha in [0.0, 0.5, 1.0, 2.0] {
        let params = opts.params.with_alpha(alpha);
        let r = &run_policies(&trace, &[PolicyKind::NstdP], params, cfg)[0];
        println!(
            "{:>8.1} {:>12.2} {:>12.3} {:>10.3}",
            alpha,
            r.avg_delay_min(),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
        );
    }

    println!("\n### Ablation 3: sharing detour budget θ (STD-P)");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>12}",
        "θ", "delay(min)", "pass-dis", "taxi-dis", "share-rate"
    );
    for theta in [1.0, 2.5, 5.0, 10.0] {
        let params = opts.params.with_detour_threshold(theta);
        let r = &run_policies(&trace, &[PolicyKind::StdP], params, cfg)[0];
        println!(
            "{:>8.1} {:>12.2} {:>12.3} {:>10.3} {:>12.3}",
            theta,
            r.avg_delay_min(),
            r.avg_passenger_dissatisfaction(),
            r.avg_taxi_dissatisfaction(),
            r.sharing_rate(),
        );
    }

    println!("\n### Ablation 4: set-packing strategy (Algorithm 3 stage 2)");
    println!(
        "{:>12} {:>8} {:>12} {:>12}",
        "strategy", "groups", "packed-req", "share-rate"
    );
    let batch: Vec<_> = trace.requests_between(8 * 3600, 8 * 3600 + 600).to_vec();
    for (name, strategy, objective) in [
        (
            "greedy",
            SetPackingStrategy::Greedy,
            PackingObjective::GroupCount,
        ),
        (
            "local",
            SetPackingStrategy::LocalSearch,
            PackingObjective::GroupCount,
        ),
        (
            "coverage",
            SetPackingStrategy::LocalSearch,
            PackingObjective::CoveredRequests,
        ),
    ] {
        let d = SharingDispatcher::with_config(
            Euclidean,
            opts.params,
            SharingConfig {
                packing: strategy,
                objective,
                ..SharingConfig::default()
            },
        );
        let metas = d.pack(&batch);
        let groups = metas.iter().filter(|g| g.len() >= 2).count();
        let packed: usize = metas.iter().filter(|g| g.len() >= 2).map(Vec::len).sum();
        println!(
            "{:>12} {:>8} {:>12} {:>12.3}",
            name,
            groups,
            packed,
            packed as f64 / batch.len().max(1) as f64
        );
    }

    println!("\n### Ablation 5: NSTD-T via role swap vs Algorithm 2 enumeration");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let d = NonSharingDispatcher::new(Euclidean, opts.params);
    let mut frames = 0usize;
    let mut multi = 0usize;
    let mut agree = 0usize;
    for _ in 0..200 {
        let start = rng.gen_range(0..20 * 3600);
        let batch: Vec<_> = trace
            .requests_between(start, start + 300)
            .iter()
            .take(8)
            .copied()
            .collect();
        let taxis: Vec<_> = trace.taxis.iter().take(6).copied().collect();
        if batch.is_empty() {
            continue;
        }
        frames += 1;
        let all = d.all_schedules(&taxis, &batch, None);
        if all.len() > 1 {
            multi += 1;
        }
        let swap = d.taxi_optimal(&taxis, &batch);
        let best = all
            .iter()
            .min_by(|a, b| {
                a.total_taxi_dissatisfaction()
                    .partial_cmp(&b.total_taxi_dissatisfaction())
                    .unwrap()
            })
            .expect("non-empty");
        if (swap.total_taxi_dissatisfaction() - best.total_taxi_dissatisfaction()).abs() < 1e-9 {
            agree += 1;
        }
    }
    println!(
        "{frames} frames sampled; {multi} had >1 stable schedule; \
         role-swap matched enumeration's taxi-best in {agree}/{frames}"
    );
}
