//! Figure 4: CDFs of dispatch delay, passenger dissatisfaction and taxi
//! dissatisfaction for non-sharing dispatch on the New York trace.
//!
//! Paper setup: NYC January 2016 trace, 700 taxis, one-minute frames,
//! 20 km/h, α = 1. Run with `--scale 1.0` for a full trace day (defaults
//! to 0.1, which preserves the supply/demand ratio by scaling the fleet
//! too).

use o2o_bench::{
    emit_policies_json, print_cdf_table, print_summary, run_policies, ExperimentOpts, PolicyKind,
};
use o2o_core::PreferenceParams;
use o2o_sim::SimConfig;
use o2o_trace::nyc_january_2016;

fn main() {
    let opts =
        ExperimentOpts::from_args_with(0.5, PreferenceParams::paper().with_taxi_threshold(4.0));
    let trace = nyc_january_2016(opts.scale)
        .taxis(opts.scaled_taxis(700))
        .generate(opts.seed);
    eprintln!(
        "fig4: trace {} — {} requests, {} taxis (scale {})",
        trace.name,
        trace.requests.len(),
        trace.taxis.len(),
        opts.scale
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::NON_SHARING,
        opts.params,
        SimConfig::default(),
    );
    print_summary(&reports);
    let delay: Vec<_> = reports.iter().map(|r| r.delay_cdf()).collect();
    print_cdf_table("Fig 4(a): dispatch delay CDF", "min", &reports, &delay);
    let pass: Vec<_> = reports.iter().map(|r| r.passenger_cdf()).collect();
    print_cdf_table(
        "Fig 4(b): passenger dissatisfaction CDF",
        "km",
        &reports,
        &pass,
    );
    let taxi: Vec<_> = reports.iter().map(|r| r.taxi_cdf()).collect();
    print_cdf_table("Fig 4(c): taxi dissatisfaction CDF", "km", &reports, &taxi);
    emit_policies_json("fig4_nonsharing_nyc", &opts, &reports);
}
