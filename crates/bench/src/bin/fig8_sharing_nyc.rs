//! Figure 8: CDFs of the three metrics for **sharing** dispatch on the
//! New York trace (θ = 5, α = β = 1).
//!
//! Paper shape: unlike the non-sharing trade-off, STD-P and STD-T
//! outperform RAII, SARP and Lin on *all three* metrics.

use o2o_bench::{
    emit_policies_json, print_cdf_table, print_summary, run_policies, ExperimentOpts, PolicyKind,
};
use o2o_core::PreferenceParams;
use o2o_sim::SimConfig;
use o2o_trace::nyc_january_2016;

fn main() {
    let opts =
        ExperimentOpts::from_args_with(0.5, PreferenceParams::paper().with_taxi_threshold(2.0));
    let trace = nyc_january_2016(opts.scale)
        .taxis(opts.scaled_taxis(700))
        .generate(opts.seed);
    eprintln!(
        "fig8: trace {} — {} requests, {} taxis (scale {})",
        trace.name,
        trace.requests.len(),
        trace.taxis.len(),
        opts.scale
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::SHARING,
        opts.params,
        SimConfig::default(),
    );
    print_summary(&reports);
    let delay: Vec<_> = reports.iter().map(|r| r.delay_cdf()).collect();
    print_cdf_table("Fig 8(a): dispatch delay CDF", "min", &reports, &delay);
    let pass: Vec<_> = reports.iter().map(|r| r.passenger_cdf()).collect();
    print_cdf_table(
        "Fig 8(b): passenger dissatisfaction CDF",
        "km",
        &reports,
        &pass,
    );
    let taxi: Vec<_> = reports.iter().map(|r| r.taxi_cdf()).collect();
    print_cdf_table("Fig 8(c): taxi dissatisfaction CDF", "km", &reports, &taxi);
    emit_policies_json("fig8_sharing_nyc", &opts, &reports);
}
