//! Figure 9: CDFs of the three metrics for **sharing** dispatch on the
//! Boston trace (θ = 5, α = β = 1).

use o2o_bench::{
    emit_policies_json, print_cdf_table, print_summary, run_policies, ExperimentOpts, PolicyKind,
};
use o2o_core::PreferenceParams;
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts =
        ExperimentOpts::from_args_with(1.0, PreferenceParams::paper().with_taxi_threshold(1.0));
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "fig9: trace {} — {} requests, {} taxis (scale {})",
        trace.name,
        trace.requests.len(),
        trace.taxis.len(),
        opts.scale
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::SHARING,
        opts.params,
        SimConfig::default(),
    );
    print_summary(&reports);
    let delay: Vec<_> = reports.iter().map(|r| r.delay_cdf()).collect();
    print_cdf_table("Fig 9(a): dispatch delay CDF", "min", &reports, &delay);
    let pass: Vec<_> = reports.iter().map(|r| r.passenger_cdf()).collect();
    print_cdf_table(
        "Fig 9(b): passenger dissatisfaction CDF",
        "km",
        &reports,
        &pass,
    );
    let taxi: Vec<_> = reports.iter().map(|r| r.taxi_cdf()).collect();
    print_cdf_table("Fig 9(c): taxi dissatisfaction CDF", "km", &reports, &taxi);
    emit_policies_json("fig9_sharing_boston", &opts, &reports);
}
