//! Crash safety: checkpoint overhead, recovery time, and supervised
//! multi-process resume.
//!
//! Three arms over the synthetic Boston trace (NSTD-P):
//!
//! * **overhead** — the same run uninterrupted vs. checkpointed at a
//!   sweep of intervals. Every checkpointed run must be bit-identical
//!   to the plain run on result fields
//!   ([`SimReport::deterministic_digest`]); at the default interval the
//!   wall-clock overhead must stay under 3% (override with
//!   `O2O_RECOVERY_OVERHEAD_MAX`, in percent — CI machines are noisy).
//! * **recovery** — the run is killed at increasing distances past the
//!   last checkpoint; resume cost is dominated by WAL replay, so
//!   recovery time is reported against WAL length, and every resumed
//!   report must match the uninterrupted digest.
//! * **supervisor** — the same scenario as real child processes (this
//!   binary re-invoked with `--run-one`), one clean and one that dies
//!   mid-run; the supervisor retries the casualty, it resumes from its
//!   checkpoint directory, and both partial shards merge into one
//!   document with equal digests.
//!
//! Output: `results/BENCH_fig_recovery.json`.

use o2o_bench::{
    bench_envelope, emit_bench_json, merge_shard_files, supervise, ChildSpec, ExperimentOpts, Json,
    SupervisorPolicy,
};
use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_obs::Recorder;
use o2o_sim::{
    latest_valid_checkpoint, policy, wal_frames, CheckpointSpec, RunOutcome, SimConfig, SimReport,
    Simulator,
};
use o2o_trace::{boston_september_2012, Trace};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Checkpoint cadences for the overhead arm; `DEFAULT_INTERVAL` is the
/// one the ≤3% acceptance gate applies to.
const INTERVALS: [u64; 3] = [32, 128, 512];
const DEFAULT_INTERVAL: u64 = 128;

/// Kill distances (frames of progress before the simulated SIGKILL) for
/// the recovery arm. The last one crosses the default checkpoint
/// interval, so that row exercises checkpoint-load + WAL-replay resume
/// rather than WAL-only resume.
const KILL_POINTS: [u64; 3] = [4, 48, 200];

/// Repetitions per timed run; the minimum is reported (the standard
/// scheduler-noise filter). The overhead gate compares two ~half-second
/// runs that differ by a few percent, so the minima need enough samples
/// to converge to each arm's true floor.
const REPS: usize = 9;

fn scenario(opts: &ExperimentOpts) -> (Trace, Simulator) {
    let trace = boston_september_2012(opts.scale).generate(opts.seed);
    (trace, Simulator::new(SimConfig::default()))
}

fn make_policy(params: PreferenceParams) -> impl o2o_sim::DispatchPolicy {
    policy::nstd_p(Euclidean, params)
}

/// Timer for the overhead gate: on-CPU time from `/proc/self/schedstat`
/// (nanoseconds actually spent running, immune to preemption by other
/// load on a shared machine), falling back to wall time where `/proc`
/// is unavailable. The simulator here is single-threaded and checkpoint
/// I/O goes through the page cache on the calling thread, so on-CPU
/// time captures the full cost being gated — a wall clock on a busy box
/// drifts by more than the 3% threshold between consecutive runs.
enum CpuTimer {
    Sched(f64),
    Wall(Instant),
}

fn schedstat_ms() -> Option<f64> {
    let s = std::fs::read_to_string("/proc/self/schedstat").ok()?;
    let ns: u64 = s.split_whitespace().next()?.parse().ok()?;
    Some(ns as f64 / 1e6)
}

impl CpuTimer {
    fn start() -> Self {
        match schedstat_ms() {
            Some(ms) => CpuTimer::Sched(ms),
            None => CpuTimer::Wall(Instant::now()),
        }
    }
    fn elapsed_ms(&self) -> f64 {
        match self {
            CpuTimer::Sched(t0) => schedstat_ms().map_or(f64::INFINITY, |t| t - t0),
            CpuTimer::Wall(t0) => t0.elapsed().as_secs_f64() * 1e3,
        }
    }
}

fn timed<T>(f: impl Fn() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (out.expect("at least one rep"), best)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o2o-fig-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn overhead_arm(opts: &ExperimentOpts, baseline: &SimReport) -> Vec<Json> {
    let (trace, sim) = scenario(opts);
    let mut rows = Vec::new();
    for interval in INTERVALS {
        let dir = fresh_dir(&format!("overhead-{interval}"));
        let spec = CheckpointSpec::new(&dir).with_interval(interval);
        // Two views of the cost, both min-of-REPS:
        //  - `machinery_ms`: time inside checkpoint machinery (digest,
        //    WAL append, checkpoint write), measured by the run loop
        //    itself via the `ckpt_machinery_us` counter. Numerator and
        //    denominator come from the same run, so the ratio is stable
        //    on a loaded machine. The acceptance gate uses this.
        //  - `ckpt_ms` vs `base_ms`: end-to-end difference between
        //    interleaved checkpointed and plain runs (on-CPU time).
        //    Reported for context; on a shared box its run-to-run drift
        //    exceeds the few percent being measured.
        let mut base_ms = f64::INFINITY;
        let mut ckpt_ms = f64::INFINITY;
        let mut machinery_ms = f64::INFINITY;
        let mut report = None;
        for _ in 0..REPS {
            let t0 = CpuTimer::start();
            let mut p = make_policy(opts.params);
            let _ = sim.run(&trace, &mut p);
            base_ms = base_ms.min(t0.elapsed_ms());

            // Each rep starts clean: overhead is write cost, not resume.
            let _ = std::fs::remove_dir_all(&dir);
            let rsim = Simulator::new(SimConfig::default()).with_recorder(Recorder::new());
            let t0 = CpuTimer::start();
            let mut p = make_policy(opts.params);
            let r = rsim
                .run_checkpointed(&trace, &mut p, &spec)
                .expect("checkpointed run")
                .report()
                .expect("runs to completion");
            ckpt_ms = ckpt_ms.min(t0.elapsed_ms());
            machinery_ms =
                machinery_ms.min(rsim.recorder().counter("ckpt_machinery_us") as f64 / 1e3);
            report = Some(r);
        }
        let report = report.expect("at least one rep");
        assert_eq!(
            report.deterministic_digest(),
            baseline.deterministic_digest(),
            "checkpointed run (interval {interval}) must be bit-identical"
        );
        let overhead_pct = 100.0 * machinery_ms / base_ms;
        let diff_pct = 100.0 * (ckpt_ms - base_ms).max(0.0) / base_ms;
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>13.2} {:>10.2} {:>9.2}",
            interval, base_ms, ckpt_ms, machinery_ms, overhead_pct, diff_pct
        );
        rows.push(Json::obj(vec![
            ("interval", interval.into()),
            ("baseline_cpu_ms", base_ms.into()),
            ("checkpointed_cpu_ms", ckpt_ms.into()),
            ("machinery_ms", machinery_ms.into()),
            ("overhead_pct", overhead_pct.into()),
            ("end_to_end_diff_pct", diff_pct.into()),
            ("digest_match", true.into()),
        ]));
        if interval == DEFAULT_INTERVAL {
            let cap = o2o_bench::RECOVERY_OVERHEAD_MAX.value();
            assert!(
                overhead_pct <= cap,
                "checkpoint overhead {overhead_pct:.2}% exceeds {cap}% at the default \
                 interval {DEFAULT_INTERVAL}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

fn recovery_arm(opts: &ExperimentOpts, baseline: &SimReport) -> Vec<Json> {
    let (trace, sim) = scenario(opts);
    let mut rows = Vec::new();
    for kill_after in KILL_POINTS {
        let dir = fresh_dir(&format!("recovery-{kill_after}"));
        let spec = CheckpointSpec::new(&dir).with_interval(DEFAULT_INTERVAL);
        let mut p = make_policy(opts.params);
        let out = sim
            .run_checkpointed(
                &trace,
                &mut p,
                &spec.clone().with_stop_after_frames(kill_after),
            )
            .expect("killed segment");
        assert!(matches!(out, RunOutcome::Stopped { .. }));
        let ckpt_frame = latest_valid_checkpoint(&dir)
            .expect("dir readable")
            .map_or(0, |(_, c)| c.frame());
        let wal_len = wal_frames(&dir).expect("wal readable").len();

        // Time the whole resumed segment, and separately the replay
        // portion (a resume that stops at the dead process's frontier).
        let (_, replay_ms) = timed(|| {
            let mut p = make_policy(opts.params);
            sim.run_checkpointed(
                &trace,
                &mut p,
                &spec.clone().with_stop_after_frames(wal_len as u64),
            )
            .expect("replay segment")
        });
        let mut p = make_policy(opts.params);
        let resumed = sim
            .run_checkpointed(&trace, &mut p, &spec)
            .expect("resumed segment")
            .report()
            .expect("runs to completion");
        assert_eq!(
            resumed.deterministic_digest(),
            baseline.deterministic_digest(),
            "resume after kill at {kill_after} must be bit-identical"
        );
        println!(
            "{:>10} {:>11} {:>10} {:>12.1}",
            kill_after, ckpt_frame, wal_len, replay_ms
        );
        rows.push(Json::obj(vec![
            ("kill_after_frames", kill_after.into()),
            ("checkpoint_frame", ckpt_frame.into()),
            ("wal_frames_replayed", wal_len.into()),
            ("replay_ms", replay_ms.into()),
            ("digest_match", true.into()),
        ]));
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

fn supervisor_arm(opts: &ExperimentOpts, baseline: &SimReport) -> (Vec<Json>, Vec<Json>) {
    let exe = std::env::current_exe().expect("own path");
    let work = fresh_dir("supervised");
    std::fs::create_dir_all(&work).expect("workdir");
    let shard = |name: &str| work.join(format!("BENCH_fig_recovery.part-{name}.json"));
    let common = |name: &str, extra: &[String]| {
        let mut args = vec![
            "--run-one".to_string(),
            "--ckpt-dir".to_string(),
            work.join(format!("ckpt-{name}")).display().to_string(),
            "--out".to_string(),
            shard(name).display().to_string(),
            "--scale".to_string(),
            opts.scale.to_string(),
            "--seed".to_string(),
            opts.seed.to_string(),
        ];
        args.extend_from_slice(extra);
        ChildSpec {
            name: name.to_string(),
            program: exe.clone(),
            args,
        }
    };
    let specs = [
        common("clean", &[]),
        // This child SIGKILL-equivalently dies 12 frames in on its first
        // (cold) attempt; the retry resumes from its checkpoint dir.
        common("flaky", &["--kill-after".to_string(), "12".to_string()]),
    ];
    let statuses = supervise(
        &specs,
        &SupervisorPolicy {
            timeout: Duration::from_secs(600),
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
        },
    );
    for s in &statuses {
        println!("  {s}");
        assert!(s.succeeded(), "supervised scenario failed: {s}");
    }
    let flaky_retried = statuses.iter().any(|s| s.attempts > 1);
    assert!(flaky_retried, "the flaky child should have needed a retry");

    let merged =
        merge_shard_files(&[shard("clean"), shard("flaky")]).expect("shards parse and merge");
    let rows = merged.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), 2, "one row per child");
    let digest = |row: &Json| {
        row.get("deterministic_digest")
            .and_then(Json::as_str)
            .expect("digest field")
            .to_string()
    };
    let expected = format!("{:016x}", baseline.deterministic_digest());
    for row in rows {
        assert_eq!(
            digest(row),
            expected,
            "child process result must match the in-process baseline"
        );
    }
    let status_rows = statuses
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("name", s.name.as_str().into()),
                ("attempts", s.attempts.into()),
                ("timeouts", s.timeouts.into()),
                ("succeeded", s.succeeded().into()),
            ])
        })
        .collect();
    let merged_rows = rows.to_vec();
    let _ = std::fs::remove_dir_all(&work);
    (status_rows, merged_rows)
}

/// Child mode: run the scenario once with checkpointing and write a
/// partial shard. `--kill-after N` simulates a SIGKILL N frames in, but
/// only on a cold start (no checkpoint and no WAL progress — a crash
/// before the first checkpoint leaves its trail only in the WAL) — the
/// supervised retry must actually finish.
fn run_one(args: &[String]) -> i32 {
    let mut ckpt_dir = None;
    let mut out = None;
    let mut kill_after = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--ckpt-dir" => ckpt_dir = Some(PathBuf::from(value())),
            "--out" => out = Some(PathBuf::from(value())),
            "--kill-after" => kill_after = value().parse().ok(),
            "--scale" => scale = value().parse().expect("--scale <f>"),
            "--seed" => seed = value().parse().expect("--seed <n>"),
            other => panic!("unknown --run-one argument {other}"),
        }
        i += 2;
    }
    let ckpt_dir = ckpt_dir.expect("--ckpt-dir is required");
    let out = out.expect("--out is required");
    let opts = ExperimentOpts {
        scale,
        seed,
        params: PreferenceParams::default(),
    };
    let (trace, sim) = scenario(&opts);
    let mut spec = CheckpointSpec::new(&ckpt_dir).with_interval(DEFAULT_INTERVAL);
    let cold = latest_valid_checkpoint(&ckpt_dir).ok().flatten().is_none()
        && wal_frames(&ckpt_dir).map_or(true, |w| w.is_empty());
    if cold {
        if let Some(k) = kill_after {
            spec = spec.with_stop_after_frames(k);
        }
    }
    let mut p = make_policy(opts.params);
    match sim
        .run_checkpointed(&trace, &mut p, &spec)
        .expect("checkpointed run")
    {
        RunOutcome::Stopped { frame } => {
            eprintln!("fig_recovery child: injected crash at frame {frame}");
            17
        }
        RunOutcome::Completed(report) => {
            let shard = Json::obj(vec![
                ("bench", "fig_recovery".into()),
                ("scale", scale.into()),
                ("seed", seed.into()),
                (
                    "rows",
                    Json::Arr(vec![Json::obj(vec![
                        ("policy", report.policy.as_str().into()),
                        ("served", report.served.into()),
                        ("frames", report.frames.into()),
                        (
                            "deterministic_digest",
                            format!("{:016x}", report.deterministic_digest()).into(),
                        ),
                    ])]),
                ),
            ]);
            std::fs::write(&out, format!("{shard}\n")).expect("write shard");
            0
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_some_and(|a| a == "--run-one") {
        std::process::exit(run_one(&raw[1..]));
    }
    let opts = ExperimentOpts::from_args(1.0);
    let (trace, sim) = scenario(&opts);
    println!(
        "fig_recovery: {} requests, {} taxis",
        trace.requests.len(),
        trace.taxis.len()
    );

    let mut p = make_policy(opts.params);
    let baseline = sim.run(&trace, &mut p);

    println!("\n=== checkpoint overhead vs interval ===");
    println!(
        "{:>9} {:>12} {:>12} {:>13} {:>10} {:>9}",
        "interval", "base_cpu_ms", "ckpt_cpu_ms", "machinery_ms", "overhead%", "e2e_diff%"
    );
    let overhead_rows = overhead_arm(&opts, &baseline);

    println!("\n=== recovery time vs WAL length ===");
    println!(
        "{:>10} {:>11} {:>10} {:>12}",
        "kill_after", "ckpt_frame", "wal_len", "replay_ms"
    );
    let recovery_rows = recovery_arm(&opts, &baseline);

    println!("\n=== supervised multi-process resume ===");
    let (status_rows, merged_rows) = supervisor_arm(&opts, &baseline);

    let body = vec![
        ("overhead", Json::Arr(overhead_rows)),
        ("recovery", Json::Arr(recovery_rows)),
        ("supervised_statuses", Json::Arr(status_rows)),
        ("supervised_rows", Json::Arr(merged_rows)),
        (
            "baseline_digest",
            format!("{:016x}", baseline.deterministic_digest()).into(),
        ),
    ];
    emit_bench_json("fig_recovery", &bench_envelope("fig_recovery", &opts, body));
    println!("\nfig_recovery: all digests matched; resume == uninterrupted");
}
