//! Per-policy wall-clock profiling for the sharing pipeline (maintenance
//! tool: `cargo run --release -p o2o-bench --bin profile_sharing -- --scale 0.1`).

use o2o_bench::{run_policies, ExperimentOpts, PolicyKind};
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts = ExperimentOpts::from_args(0.1);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "profile: {} requests, {} taxis",
        trace.requests.len(),
        trace.taxis.len()
    );
    for kind in PolicyKind::SHARING {
        let t0 = std::time::Instant::now();
        let r = run_policies(&trace, &[kind], opts.params, SimConfig::default());
        eprintln!(
            "{:>6}: {:>8.2?}  served {} shared {:.2}",
            r[0].policy,
            t0.elapsed(),
            r[0].served,
            r[0].sharing_rate()
        );
    }
}
