//! Fault tolerance and the deadline degradation ladder.
//!
//! Two arms over the synthetic Boston trace:
//!
//! * **fault sweep** (NSTD-P, unlimited budget): a seeded [`FaultPlan`]
//!   injects taxi dropouts, request cancellations, GPS jitter,
//!   duplicate/malformed records and mid-dispatch churn at a swept
//!   uniform rate. The engine must survive every rate, balance the
//!   request ledger exactly, and — at rate 0 — remain bit-identical to
//!   a run with no plan at all.
//! * **budget sweep** (NSTD-T, no faults): per-frame deadlines are
//!   calibrated from the unlimited run's median frame cost, then
//!   tightened until the ladder demonstrably steps down — first
//!   NSTD-T → NSTD-P (the taxi-optimal pass is abandoned after
//!   preference construction), ultimately → greedy-nearest at a zero
//!   deadline.
//!
//! Reported per row: served ratio, injected-fault and degradation
//! counts, and the recovery overhead (time spent screening arrivals and
//! absorbing mid-dispatch churn, relative to dispatch time).
//!
//! Output: `results/BENCH_faults.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts, Json};
use o2o_core::{DispatchTier, TimeBudgetSpec};
use o2o_geo::Euclidean;
use o2o_sim::{policy, FaultPlan, SimConfig, SimReport, Simulator};
use o2o_trace::{boston_september_2012, Trace};
use std::time::Duration;

/// Uniform per-event fault rates for the fault-sweep arm.
const FAULT_RATES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// Deadline fractions of the unlimited run's median frame cost. The
/// sweep extends itself downward (halving) until at least one row
/// degrades NSTD-T → NSTD-P, so the ladder's middle rung is always
/// demonstrated.
const DEADLINE_FRACTIONS: [f64; 5] = [0.5, 0.3, 0.15, 0.08, 0.04];

/// The request ledger must balance exactly: every request in the trace
/// is served, still pending at the end, cancelled while waiting, or
/// cancelled mid-dispatch — nothing is lost, nothing counted twice.
fn assert_ledger_balances(trace: &Trace, r: &SimReport) {
    let accounted = r.served as u64
        + r.unserved_at_end as u64
        + r.faults.request_cancellations
        + r.faults.mid_dispatch_cancellations;
    assert_eq!(
        trace.requests.len() as u64,
        accounted,
        "request ledger out of balance"
    );
}

/// Recovery overhead as a percent of dispatch time (0 when no dispatch
/// time was recorded).
fn recovery_overhead_pct(r: &SimReport) -> f64 {
    let dispatch = r.total_dispatch_ms();
    if dispatch > 0.0 {
        100.0 * r.faults.recovery_ms / dispatch
    } else {
        0.0
    }
}

fn fault_row(rate: f64, r: &SimReport) -> Json {
    Json::obj(vec![
        ("arm", "faults".into()),
        ("fault_rate", rate.into()),
        ("served", r.served.into()),
        ("served_ratio", r.served_ratio().into()),
        ("taxi_dropouts", r.faults.taxi_dropouts.into()),
        (
            "request_cancellations",
            r.faults.request_cancellations.into(),
        ),
        ("gps_faults", r.faults.gps_faults.into()),
        ("quarantined_arrivals", r.faults.quarantined_arrivals.into()),
        (
            "mid_dispatch_cancellations",
            r.faults.mid_dispatch_cancellations.into(),
        ),
        (
            "mid_dispatch_dropouts",
            r.faults.mid_dispatch_dropouts.into(),
        ),
        ("total_injected", r.faults.total_injected().into()),
        (
            "recovered_dispatch_errors",
            r.faults.recovered_dispatch_errors.into(),
        ),
        ("degradations", r.degradations.len().into()),
        ("recovery_ms", r.faults.recovery_ms.into()),
        ("recovery_overhead_pct", recovery_overhead_pct(r).into()),
    ])
}

fn budget_row(deadline_us: u64, r: &SimReport) -> Json {
    Json::obj(vec![
        ("arm", "budget".into()),
        ("deadline_us", deadline_us.into()),
        ("served", r.served.into()),
        ("served_ratio", r.served_ratio().into()),
        (
            "degraded_to_nstd_p",
            r.degradations_to(DispatchTier::NstdP).into(),
        ),
        (
            "degraded_to_greedy",
            r.degradations_to(DispatchTier::GreedyNearest).into(),
        ),
        ("degradations", r.degradations.len().into()),
        ("avg_dispatch_ms", r.avg_dispatch_ms().into()),
        ("max_dispatch_ms", r.max_dispatch_ms().into()),
    ])
}

fn run_budgeted(trace: &Trace, opts: &ExperimentOpts, deadline: Duration) -> SimReport {
    let mut p = policy::nstd_t(Euclidean, opts.params);
    let cfg = SimConfig {
        frame_budget: TimeBudgetSpec::default().with_deadline(deadline),
        ..SimConfig::default()
    };
    Simulator::new(cfg).run(trace, &mut p)
}

fn main() {
    let opts = ExperimentOpts::from_args(0.01);
    let trace = boston_september_2012(opts.scale).generate(opts.seed);
    println!(
        "trace {}: {} requests, {} taxis",
        trace.name,
        trace.requests.len(),
        trace.taxis.len()
    );
    let mut rows = Vec::new();

    // ---- Arm 1: fault-rate sweep, NSTD-P, unlimited budget ----------
    let baseline = {
        let mut p = policy::nstd_p(Euclidean, opts.params);
        Simulator::new(SimConfig::default()).run(&trace, &mut p)
    };
    println!(
        "\n{:>6} {:>12} {:>9} {:>9} {:>9} {:>10} {:>12}",
        "rate", "served_ratio", "injected", "recovered", "degraded", "recov_ms", "overhead_pct"
    );
    for (i, &rate) in FAULT_RATES.iter().enumerate() {
        let mut p = policy::nstd_p(Euclidean, opts.params);
        let report = Simulator::new(SimConfig::default())
            .with_fault_plan(FaultPlan::uniform(opts.seed.wrapping_add(i as u64), rate))
            .run(&trace, &mut p);
        assert_ledger_balances(&trace, &report);
        assert!(
            report.degradations.is_empty(),
            "unlimited budget must never degrade"
        );
        if rate == 0.0 {
            // The zero-rate plan must leave the engine on the exact code
            // path of a plain run: bit-identical outputs.
            assert_eq!(report.delays_min, baseline.delays_min);
            assert_eq!(
                report.passenger_dissatisfaction,
                baseline.passenger_dissatisfaction
            );
            assert_eq!(report.taxi_dissatisfaction, baseline.taxi_dissatisfaction);
            assert_eq!(report.total_drive_km, baseline.total_drive_km);
            assert_eq!(report.queue_by_frame, baseline.queue_by_frame);
            assert_eq!(report.faults.total_injected(), 0);
        }
        println!(
            "{rate:>6.2} {:>12.4} {:>9} {:>9} {:>9} {:>10.2} {:>12.3}",
            report.served_ratio(),
            report.faults.total_injected(),
            report.faults.recovered_dispatch_errors,
            report.degradations.len(),
            report.faults.recovery_ms,
            recovery_overhead_pct(&report),
        );
        rows.push(fault_row(rate, &report));
    }

    // ---- Arm 2: deadline sweep, NSTD-T, no faults -------------------
    // Calibrate against this machine: the unlimited run's median
    // non-trivial frame cost anchors the deadline fractions, so the
    // ladder engages regardless of host speed.
    let unlimited = {
        let mut p = policy::nstd_t(Euclidean, opts.params);
        Simulator::new(SimConfig::default()).run(&trace, &mut p)
    };
    let mut frame_ms: Vec<f64> = unlimited
        .dispatch_ms_by_frame
        .iter()
        .copied()
        .filter(|&m| m > 0.0)
        .collect();
    frame_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median_ms = frame_ms.get(frame_ms.len() / 2).copied().unwrap_or(1.0);
    println!(
        "\ncalibration: median dispatched-frame cost {median_ms:.3} ms over {} frames",
        frame_ms.len()
    );

    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>12}",
        "deadline_us", "served_ratio", "to_nstd_p", "to_greedy", "avg_disp_ms"
    );
    let mut fractions: Vec<f64> = DEADLINE_FRACTIONS.to_vec();
    let mut demonstrated_nstd_p = 0usize;
    let mut fi = 0;
    while fi < fractions.len() {
        let frac = fractions[fi];
        let deadline_us = (median_ms * frac * 1e3).max(1.0) as u64;
        let report = run_budgeted(&trace, &opts, Duration::from_micros(deadline_us));
        assert_ledger_balances(&trace, &report);
        demonstrated_nstd_p += report.degradations_to(DispatchTier::NstdP);
        println!(
            "{deadline_us:>12} {:>12.4} {:>10} {:>10} {:>12.3}",
            report.served_ratio(),
            report.degradations_to(DispatchTier::NstdP),
            report.degradations_to(DispatchTier::GreedyNearest),
            report.avg_dispatch_ms(),
        );
        rows.push(budget_row(deadline_us, &report));
        // Extend the sweep downward until the middle rung fires (the
        // window between preference construction and the taxi-optimal
        // pass narrows on fast hosts), bounded so a degenerate trace
        // cannot loop forever.
        if fi + 1 == fractions.len()
            && demonstrated_nstd_p == 0
            && fractions.len() < DEADLINE_FRACTIONS.len() + 12
            && deadline_us > 1
        {
            fractions.push(frac / 2.0);
        }
        fi += 1;
    }
    assert!(
        demonstrated_nstd_p > 0,
        "no deadline demonstrated the NSTD-T -> NSTD-P rung; \
         re-run with a larger --scale"
    );

    // The floor of the ladder: a zero deadline degrades every dispatched
    // frame straight to greedy-nearest, and the run still completes.
    let zero = run_budgeted(&trace, &opts, Duration::ZERO);
    assert_ledger_balances(&trace, &zero);
    assert!(
        zero.degradations_to(DispatchTier::GreedyNearest) > 0,
        "zero deadline must degrade to greedy"
    );
    println!(
        "{:>12} {:>12.4} {:>10} {:>10} {:>12.3}",
        0,
        zero.served_ratio(),
        zero.degradations_to(DispatchTier::NstdP),
        zero.degradations_to(DispatchTier::GreedyNearest),
        zero.avg_dispatch_ms(),
    );
    rows.push(budget_row(0, &zero));

    emit_bench_json(
        "faults",
        &bench_envelope(
            "faults",
            &opts,
            vec![
                ("median_frame_ms", median_ms.into()),
                ("rows", Json::Arr(rows)),
            ],
        ),
    );
}
