//! Figure 7: average metrics vs clock time (12am–12am), Boston trace,
//! non-sharing dispatch.
//!
//! Paper shape: pronounced degradation around the 9am and 6pm commuter
//! peaks — larger delays, higher passenger dissatisfaction, and (because
//! taxis get to choose among many requests) *lower* taxi dissatisfaction.

use o2o_bench::{
    bench_envelope, emit_bench_json, policy_json, print_hourly_table, run_policies, ExperimentOpts,
    Json, PolicyKind,
};
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "fig7: trace {} — {} requests, {} taxis",
        trace.name,
        trace.requests.len(),
        trace.taxis.len()
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::NON_SHARING,
        opts.params,
        SimConfig::default(),
    );
    let delay: Vec<[f64; 24]> = reports.iter().map(|r| r.hourly_delay().values).collect();
    print_hourly_table(
        "Fig 7(a): average dispatch delay (min) by clock time",
        &reports,
        &delay,
    );
    let pass: Vec<[f64; 24]> = reports
        .iter()
        .map(|r| r.hourly_passenger_dissatisfaction().values)
        .collect();
    print_hourly_table(
        "Fig 7(b): average passenger dissatisfaction (km) by clock time",
        &reports,
        &pass,
    );
    let taxi: Vec<[f64; 24]> = reports
        .iter()
        .map(|r| r.hourly_taxi_dissatisfaction().values)
        .collect();
    print_hourly_table(
        "Fig 7(c): average taxi dissatisfaction (km) by clock time",
        &reports,
        &taxi,
    );

    // Per-policy metrics plus the three hour-of-day series the figure
    // plots.
    let policies = reports
        .iter()
        .zip(&delay)
        .zip(&pass)
        .zip(&taxi)
        .map(|(((r, d), p), t)| {
            let Json::Obj(mut fields) = policy_json(r) else {
                unreachable!("policy_json returns an object")
            };
            fields.push(("hourly_delay_min".into(), Json::arr(d.iter().copied())));
            fields.push((
                "hourly_passenger_dissatisfaction_km".into(),
                Json::arr(p.iter().copied()),
            ));
            fields.push((
                "hourly_taxi_dissatisfaction_km".into(),
                Json::arr(t.iter().copied()),
            ));
            Json::Obj(fields)
        })
        .collect();
    emit_bench_json(
        "fig7_clock_time",
        &bench_envelope(
            "fig7_clock_time",
            &opts,
            vec![("policies", Json::Arr(policies))],
        ),
    );
}
