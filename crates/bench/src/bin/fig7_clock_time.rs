//! Figure 7: average metrics vs clock time (12am–12am), Boston trace,
//! non-sharing dispatch.
//!
//! Paper shape: pronounced degradation around the 9am and 6pm commuter
//! peaks — larger delays, higher passenger dissatisfaction, and (because
//! taxis get to choose among many requests) *lower* taxi dissatisfaction.

use o2o_bench::{print_hourly_table, run_policies, ExperimentOpts, PolicyKind};
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "fig7: trace {} — {} requests, {} taxis",
        trace.name,
        trace.requests.len(),
        trace.taxis.len()
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::NON_SHARING,
        opts.params,
        SimConfig::default(),
    );
    let delay: Vec<[f64; 24]> = reports.iter().map(|r| r.hourly_delay().values).collect();
    print_hourly_table(
        "Fig 7(a): average dispatch delay (min) by clock time",
        &reports,
        &delay,
    );
    let pass: Vec<[f64; 24]> = reports
        .iter()
        .map(|r| r.hourly_passenger_dissatisfaction().values)
        .collect();
    print_hourly_table(
        "Fig 7(b): average passenger dissatisfaction (km) by clock time",
        &reports,
        &pass,
    );
    let taxi: Vec<[f64; 24]> = reports
        .iter()
        .map(|r| r.hourly_taxi_dissatisfaction().values)
        .collect();
    print_hourly_table(
        "Fig 7(c): average taxi dissatisfaction (km) by clock time",
        &reports,
        &taxi,
    );
}
