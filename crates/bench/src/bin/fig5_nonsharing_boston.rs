//! Figure 5: the three non-sharing CDFs on the Boston trace
//! (September 2012, 200 taxis).
//!
//! The paper's contrasts with Fig. 4: smaller area ⇒ lower dissatisfaction
//! magnitudes, and NSTD is *not* outperformed on dispatch delay.

use o2o_bench::{
    emit_policies_json, print_cdf_table, print_summary, run_policies, ExperimentOpts, PolicyKind,
};
use o2o_sim::SimConfig;
use o2o_trace::boston_september_2012;

fn main() {
    let opts = ExperimentOpts::from_args(0.2);
    let trace = boston_september_2012(opts.scale)
        .taxis(opts.scaled_taxis(200))
        .generate(opts.seed);
    eprintln!(
        "fig5: trace {} — {} requests, {} taxis (scale {})",
        trace.name,
        trace.requests.len(),
        trace.taxis.len(),
        opts.scale
    );
    let reports = run_policies(
        &trace,
        &PolicyKind::NON_SHARING,
        opts.params,
        SimConfig::default(),
    );
    print_summary(&reports);
    let delay: Vec<_> = reports.iter().map(|r| r.delay_cdf()).collect();
    print_cdf_table("Fig 5(a): dispatch delay CDF", "min", &reports, &delay);
    let pass: Vec<_> = reports.iter().map(|r| r.passenger_cdf()).collect();
    print_cdf_table(
        "Fig 5(b): passenger dissatisfaction CDF",
        "km",
        &reports,
        &pass,
    );
    let taxi: Vec<_> = reports.iter().map(|r| r.taxi_cdf()).collect();
    print_cdf_table("Fig 5(c): taxi dissatisfaction CDF", "km", &reports, &taxi);
    emit_policies_json("fig5_nonsharing_boston", &opts, &reports);
}
