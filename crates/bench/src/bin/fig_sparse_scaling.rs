//! Sparse vs dense candidate generation: frame-dispatch wall-clock as
//! instance size and threshold density grow.
//!
//! Sweeps |T| × |R| frames at constant city density (the area grows with
//! the fleet, as it does when a trace is scaled up), across three dummy
//! threshold settings. For every point the sparse schedule is asserted
//! **equal** to the dense one — the speedup is exact, not approximate —
//! and the pruning ratio (surviving candidate pairs / |T|·|R|) is
//! reported alongside min/median timings.
//!
//! Output: `results/BENCH_sparse_scaling.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts, Json};
use o2o_core::{
    build_taxi_grid, CandidateMode, NonSharingDispatcher, PreferenceParams, SparsePickupDistances,
};
use o2o_geo::{Euclidean, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One frame: `n` taxis and `m` requests uniform over a square city
/// whose side keeps taxi density constant as `n` grows (20 km at 250
/// taxis). Trips are urban-length (1–6 km straight-line, like the
/// paper's traces) rather than corner-to-corner: the taxi-side dummy
/// bound `θ_t + α·trip` only prunes when trips are short, exactly as in
/// the real workload.
fn frame(seed: u64, n: usize, m: usize) -> (Vec<Taxi>, Vec<Request>, f64) {
    let side = 20.0 * (n as f64 / 250.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(-side / 2.0..side / 2.0),
            rng.gen_range(-side / 2.0..side / 2.0),
        )
    };
    let taxis = (0..n)
        .map(|i| Taxi::new(TaxiId(i as u64), pt(&mut rng)))
        .collect();
    let requests = (0..m)
        .map(|j| {
            let pickup = pt(&mut rng);
            let len = rng.gen_range(1.0..6.0);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let dropoff = Point::new(pickup.x + len * angle.cos(), pickup.y + len * angle.sin());
            Request::new(RequestId(j as u64), 0, pickup, dropoff)
        })
        .collect();
    (taxis, requests, side)
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (samples[0], samples[samples.len() / 2])
}

fn main() {
    let opts = ExperimentOpts::from_args(1.0);
    let sizes = [(250, 250), (500, 500), (1000, 1000), (2000, 2000)];
    let thresholds = [
        ("paper", PreferenceParams::paper()),
        (
            "tight",
            PreferenceParams::paper()
                .with_passenger_threshold(5.0)
                .with_taxi_threshold(1.0),
        ),
        (
            "wide",
            PreferenceParams::paper()
                .with_passenger_threshold(40.0)
                .with_taxi_threshold(10.0),
        ),
    ];

    println!(
        "{:>6} {:>6} {:>7} {:>7} {:>10} {:>12} {:>12} {:>8}",
        "|T|", "|R|", "thresh", "city_km", "pairs_kept", "dense_ms", "sparse_ms", "speedup"
    );
    let mut rows = Vec::new();
    for (ci, &(n, m)) in sizes.iter().enumerate() {
        let (taxis, requests, side) = frame(opts.seed.wrapping_add(ci as u64), n, m);
        for (label, params) in thresholds {
            let dense = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Dense)
                .with_parallelism(Parallelism::auto());
            let sparse = NonSharingDispatcher::new(Euclidean, params)
                .with_candidate_mode(CandidateMode::Sparse)
                .with_parallelism(Parallelism::auto());

            // Exactness first: both NSTD variants, bit for bit.
            let p_dense = dense.passenger_optimal(&taxis, &requests);
            assert_eq!(
                sparse.passenger_optimal(&taxis, &requests),
                p_dense,
                "sparse NSTD-P diverged at {n}x{m}/{label}"
            );
            assert_eq!(
                sparse.taxi_optimal(&taxis, &requests),
                dense.taxi_optimal(&taxis, &requests),
                "sparse NSTD-T diverged at {n}x{m}/{label}"
            );

            let reps = if n >= 1000 { 3 } else { 5 };
            let (dense_min, dense_med) = time_ms(reps, || {
                std::hint::black_box(dense.passenger_optimal(&taxis, &requests));
            });
            let (sparse_min, sparse_med) = time_ms(reps, || {
                std::hint::black_box(sparse.passenger_optimal(&taxis, &requests));
            });

            let spd = SparsePickupDistances::compute(
                &Euclidean,
                &params,
                &taxis,
                &requests,
                &build_taxi_grid(&taxis),
                Parallelism::auto(),
            );
            let kept = spd.candidate_count();
            let pruning = kept as f64 / (n * m) as f64;
            let speedup = dense_min / sparse_min;
            println!(
                "{n:>6} {m:>6} {label:>7} {side:>7.1} {pruning:>10.4} {dense_min:>12.2} \
                 {sparse_min:>12.2} {speedup:>8.2}"
            );
            rows.push(Json::obj(vec![
                ("n_taxis", n.into()),
                ("n_requests", m.into()),
                ("thresholds", label.into()),
                ("passenger_threshold", params.passenger_threshold.into()),
                ("taxi_threshold", params.taxi_threshold.into()),
                ("city_km", side.into()),
                ("candidate_pairs", kept.into()),
                ("dense_pairs", (n * m).into()),
                ("pruning_ratio", pruning.into()),
                ("dense_ms_min", dense_min.into()),
                ("dense_ms_median", dense_med.into()),
                ("sparse_ms_min", sparse_min.into()),
                ("sparse_ms_median", sparse_med.into()),
                ("speedup_min", speedup.into()),
                ("schedules_match", true.into()),
            ]));
        }
    }

    emit_bench_json(
        "sparse_scaling",
        &bench_envelope("sparse_scaling", &opts, vec![("rows", Json::Arr(rows))]),
    );
}
