//! Live SLO monitoring: calibrated deadline sweep + supervised fleet
//! aggregation.
//!
//! Two arms over the synthetic Boston trace (NSTD-P):
//!
//! * **sweep** — calibrates the workload's p95 frame latency from an
//!   unmonitored run, then re-runs the same trace under
//!   [`SloMonitor`](o2o_obs::SloMonitor) specs at a sweep of deadlines
//!   around that p95. Tight deadlines breach, generous ones stay green,
//!   and every monitored run must be bit-identical to the unmonitored
//!   one ([`SimReport::deterministic_digest`]) — the monitor observes,
//!   never steers.
//! * **fleet** — the same scenario as real child processes (this binary
//!   re-invoked with `--run-one`), each writing a manifest-stamped
//!   JSONL telemetry stream ([`FleetMeta`]) plus a partial
//!   `BENCH_*.json` shard. The parent merges the streams into one
//!   `results/FLEET_fig_slo.json` and asserts the fleet summary's
//!   per-shard frame counts and span totals reconcile exactly with the
//!   children's own streams and result rows.
//!
//! Output: `results/BENCH_fig_slo.json` and `results/FLEET_fig_slo.json`.

use o2o_bench::{
    bench_envelope, emit_bench_json, merge_shard_files, supervise, write_fleet_json, ChildSpec,
    ExperimentOpts, Json, SupervisorPolicy,
};
use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_obs::{FleetMeta, FleetOptions, JsonlSink, Recorder, SloEvent, SloMetric, SloSpec};
use o2o_sim::{policy, SimConfig, SimReport, Simulator};
use o2o_trace::{boston_september_2012, Trace};
use std::path::PathBuf;
use std::time::Duration;

/// Rolling-window length (frames) for every spec in this figure.
const WINDOW: usize = 16;
/// Child processes in the fleet arm.
const SHARDS: u32 = 3;
/// Deadline sweep, as multiples of the calibrated p95.
const DEADLINE_MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn scenario(scale: f64, seed: u64) -> Trace {
    boston_september_2012(scale).generate(seed)
}

fn make_policy(params: PreferenceParams) -> impl o2o_sim::DispatchPolicy {
    policy::nstd_p(Euclidean, params)
}

/// The figure's spec set for one frame-latency deadline: a p95 ceiling
/// at the deadline, a p50 ceiling at half of it, a served-ratio floor,
/// and a no-degradation watch that names the ladder rung on breach.
fn slo_specs(deadline_ms: f64) -> Vec<SloSpec> {
    vec![
        SloSpec::max("frame-p95", SloMetric::FrameP95Ms, deadline_ms, WINDOW),
        SloSpec::max(
            "frame-p50",
            SloMetric::FrameP50Ms,
            deadline_ms * 0.5,
            WINDOW,
        ),
        SloSpec::min("served-ratio", SloMetric::ServedRatio, 0.05, WINDOW),
        SloSpec::max("no-degradation", SloMetric::DegradationRate, 0.0, WINDOW),
    ]
}

fn slo_event_json(e: &SloEvent) -> Json {
    let (kind, spec, metric, value, threshold, frame, rung) = match e {
        SloEvent::Breach {
            spec,
            metric,
            value,
            threshold,
            frame,
            rung,
        } => ("breach", spec, metric, value, threshold, frame, *rung),
        SloEvent::Recover {
            spec,
            metric,
            value,
            threshold,
            frame,
        } => ("recover", spec, metric, value, threshold, frame, None),
    };
    Json::obj(vec![
        ("frame", (*frame).into()),
        ("kind", kind.into()),
        ("spec", spec.as_str().into()),
        ("metric", metric.as_str().into()),
        ("value", (*value).into()),
        ("threshold", (*threshold).into()),
        ("rung", rung.map_or(Json::Null, Json::from)),
    ])
}

/// p95 of the positive entries of a latency series (1 ms when the
/// series is degenerate, so the sweep always has a usable anchor).
fn p95_ms(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| *x > 0.0).collect();
    if v.is_empty() {
        return 1.0;
    }
    v.sort_by(f64::total_cmp);
    v[((v.len() - 1) as f64 * 0.95).round() as usize]
}

fn sweep_arm(opts: &ExperimentOpts, baseline: &SimReport, p95: f64) -> Vec<Json> {
    let trace = scenario(opts.scale, opts.seed);
    let sim = Simulator::new(SimConfig::default());
    let mut rows = Vec::new();
    println!(
        "{:>12} {:>9} {:>11} {:>13}",
        "deadline_ms", "breaches", "recoveries", "first_breach"
    );
    for mult in DEADLINE_MULTIPLIERS {
        let deadline = p95 * mult;
        let mut p = make_policy(opts.params);
        let report = sim
            .clone()
            .with_slo(slo_specs(deadline))
            .run(&trace, &mut p);
        assert_eq!(
            report.deterministic_digest(),
            baseline.deterministic_digest(),
            "monitored run (deadline {deadline:.3} ms) must be bit-identical"
        );
        let breaches = report.slo_events.iter().filter(|e| e.is_breach()).count();
        let recoveries = report.slo_events.len() - breaches;
        let first_breach = report
            .slo_events
            .iter()
            .find(|e| e.is_breach())
            .map(SloEvent::frame);
        println!(
            "{:>12.3} {:>9} {:>11} {:>13}",
            deadline,
            breaches,
            recoveries,
            first_breach.map_or("-".into(), |f| f.to_string())
        );
        rows.push(Json::obj(vec![
            ("deadline_ms", deadline.into()),
            ("p95_multiplier", mult.into()),
            ("breaches", breaches.into()),
            ("recoveries", recoveries.into()),
            (
                "first_breach_frame",
                first_breach.map_or(Json::Null, Json::from),
            ),
            (
                "events",
                Json::Arr(report.slo_events.iter().map(slo_event_json).collect()),
            ),
            ("digest_match", true.into()),
        ]));
    }
    // A deadline far below the floor must breach; one far above must not.
    let tight = rows
        .first()
        .and_then(|r| r.get("breaches"))
        .and_then(Json::as_f64);
    assert!(
        tight.is_some_and(|b| b > 0.0),
        "the tightest deadline (p95 x {}) should breach",
        DEADLINE_MULTIPLIERS[0]
    );
    rows
}

fn fleet_arm(opts: &ExperimentOpts, baseline: &SimReport, deadline: f64) -> (PathBuf, Vec<Json>) {
    let exe = std::env::current_exe().expect("own path");
    let work = std::env::temp_dir().join(format!("o2o-fig-slo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("workdir");
    let run_id = format!("fig-slo-{}", opts.seed);
    let log = |shard: u32| work.join(format!("fleet-shard-{shard}.jsonl"));
    let part = |shard: u32| work.join(format!("BENCH_fig_slo.part-{shard}.json"));
    let specs: Vec<ChildSpec> = (0..SHARDS)
        .map(|shard| ChildSpec {
            name: format!("shard-{shard}"),
            program: exe.clone(),
            args: vec![
                "--run-one".into(),
                "--shard".into(),
                shard.to_string(),
                "--run-id".into(),
                run_id.clone(),
                "--log".into(),
                log(shard).display().to_string(),
                "--out".into(),
                part(shard).display().to_string(),
                "--scale".into(),
                opts.scale.to_string(),
                "--seed".into(),
                opts.seed.to_string(),
                "--deadline-ms".into(),
                deadline.to_string(),
            ],
        })
        .collect();
    let statuses = supervise(
        &specs,
        &SupervisorPolicy {
            timeout: Duration::from_secs(600),
            max_attempts: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
        },
    );
    for s in &statuses {
        println!("  {s}");
        assert!(s.succeeded(), "fleet child failed: {s}");
    }

    // One fleet-wide summary from the children's telemetry streams.
    let logs: Vec<PathBuf> = (0..SHARDS).map(log).collect();
    let fleet_opts = FleetOptions::default();
    let (fleet_path, fleet) =
        write_fleet_json("fig_slo", &logs, &fleet_opts).expect("fleet streams parse and merge");
    assert_eq!(fleet.run_id, run_id);
    assert_eq!(fleet.shards.len(), SHARDS as usize, "one summary per child");

    // Reconciliation against the streams themselves: the merged summary
    // must restate each stream exactly — frame counts, span self-time
    // totals, balanced span events — and fleet totals must be the sums.
    let mut frames_sum = 0u64;
    let mut self_ms_sum = 0.0f64;
    for shard_log in &logs {
        let text = std::fs::read_to_string(shard_log).expect("stream readable");
        let telemetry = o2o_obs::fleet::parse_shard_str(&text, &fleet_opts).expect("stream parses");
        assert_eq!(telemetry.span_starts, telemetry.span_ends, "spans balance");
        let summary = fleet
            .shards
            .iter()
            .find(|s| s.meta.shard_id == telemetry.meta.shard_id)
            .expect("shard present in fleet summary");
        assert_eq!(summary.frames, telemetry.frames(), "frame counts reconcile");
        assert_eq!(
            summary.total_self_ms,
            telemetry.breakdown.total_self_ms(),
            "span totals reconcile"
        );
        frames_sum += summary.frames;
        self_ms_sum += summary.total_self_ms;
    }
    assert_eq!(fleet.frames, frames_sum, "fleet frames are the shard sum");
    assert!(
        (fleet.total_self_ms - self_ms_sum).abs() < 1e-9,
        "fleet span totals are the shard sum"
    );

    // And against the children's own result rows: each child reported
    // its dispatched-frame count and breach tally in its BENCH shard.
    let parts: Vec<PathBuf> = (0..SHARDS).map(part).collect();
    let merged = merge_shard_files(&parts).expect("result shards merge");
    let rows = merged.get("rows").and_then(Json::as_arr).expect("rows");
    assert_eq!(rows.len(), SHARDS as usize);
    for row in rows {
        let shard_id = row.get("shard_id").and_then(Json::as_f64).expect("id") as u32;
        let summary = fleet
            .shards
            .iter()
            .find(|s| s.meta.shard_id == shard_id)
            .expect("row has a fleet shard");
        let frames = row.get("frames_recorded").and_then(Json::as_f64).unwrap();
        assert_eq!(summary.frames, frames as u64, "child-reported frames");
        let breaches = row.get("slo_breaches").and_then(Json::as_f64).unwrap();
        assert_eq!(summary.breaches, breaches as u64, "child-reported breaches");
        if shard_id == 0 {
            // Shard 0 runs the parent's exact workload: cross-process
            // determinism with telemetry and SLO monitoring enabled.
            assert_eq!(
                row.get("deterministic_digest").and_then(Json::as_str),
                Some(format!("{:016x}", baseline.deterministic_digest()).as_str()),
                "child result must match the in-process baseline"
            );
        }
    }

    println!("\n  per-shard SLO breach timelines:");
    let mut shard_rows = Vec::new();
    for s in &fleet.shards {
        let timeline: Vec<String> = s
            .slo_events
            .iter()
            .map(|e| format!("{}@{} {}", e.kind, e.frame, e.spec))
            .collect();
        println!(
            "    shard {}: {} frames, {} breach(es) [{}]",
            s.meta.shard_id,
            s.frames,
            s.breaches,
            timeline.join(", ")
        );
        shard_rows.push(Json::obj(vec![
            ("shard_id", s.meta.shard_id.into()),
            ("frames", s.frames.into()),
            ("total_self_ms", s.total_self_ms.into()),
            ("slo_breaches", s.breaches.into()),
            ("slo_recoveries", s.recoveries.into()),
        ]));
    }
    let _ = std::fs::remove_dir_all(&work);
    (fleet_path, shard_rows)
}

/// Child mode: run one shard's workload with a manifest-stamped JSONL
/// stream and the figure's SLO specs, then write a partial result shard.
fn run_one(args: &[String]) -> i32 {
    let mut shard = 0u32;
    let mut run_id = String::new();
    let mut log = None;
    let mut out = None;
    let mut scale = 1.0f64;
    let mut seed = 42u64;
    let mut deadline_ms = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        let value = || {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--shard" => shard = value().parse().expect("--shard <n>"),
            "--run-id" => run_id = value().clone(),
            "--log" => log = Some(PathBuf::from(value())),
            "--out" => out = Some(PathBuf::from(value())),
            "--scale" => scale = value().parse().expect("--scale <f>"),
            "--seed" => seed = value().parse().expect("--seed <n>"),
            "--deadline-ms" => deadline_ms = value().parse().expect("--deadline-ms <f>"),
            other => panic!("unknown --run-one argument {other}"),
        }
        i += 2;
    }
    let log = log.expect("--log is required");
    let out = out.expect("--out is required");
    let shard_seed = seed + u64::from(shard);
    let trace = scenario(scale, shard_seed);
    let sink = JsonlSink::create(&log)
        .expect("create telemetry stream")
        .with_meta(FleetMeta::new(run_id, shard, shard_seed));
    let recorder = Recorder::with_sink(Box::new(sink));
    let mut p = make_policy(PreferenceParams::default());
    let report = Simulator::new(SimConfig::default())
        .with_recorder(recorder.clone())
        .with_slo(slo_specs(deadline_ms))
        .run(&trace, &mut p);
    let breaches = report.slo_events.iter().filter(|e| e.is_breach()).count();
    let shard_doc = Json::obj(vec![
        ("bench", "fig_slo".into()),
        ("scale", scale.into()),
        ("seed", seed.into()),
        ("deadline_ms", deadline_ms.into()),
        (
            "rows",
            Json::Arr(vec![Json::obj(vec![
                ("shard_id", shard.into()),
                ("shard_seed", shard_seed.into()),
                ("frames", report.frames.into()),
                (
                    "frames_recorded",
                    report.stage_breakdown.frames.len().into(),
                ),
                ("served", report.served.into()),
                ("slo_breaches", breaches.into()),
                (
                    "slo_recoveries",
                    (report.slo_events.len() - breaches).into(),
                ),
                (
                    "deterministic_digest",
                    format!("{:016x}", report.deterministic_digest()).into(),
                ),
            ])]),
        ),
    ]);
    // Drop the recorder's last reference so the stream flushes before
    // the parent reads it (process exit would too; this is explicit).
    drop(recorder);
    std::fs::write(&out, format!("{shard_doc}\n")).expect("write result shard");
    0
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().is_some_and(|a| a == "--run-one") {
        std::process::exit(run_one(&raw[1..]));
    }
    let opts = ExperimentOpts::from_args(1.0);
    let trace = scenario(opts.scale, opts.seed);
    println!(
        "fig_slo: {} requests, {} taxis",
        trace.requests.len(),
        trace.taxis.len()
    );

    let mut p = make_policy(opts.params);
    let baseline = Simulator::new(SimConfig::default()).run(&trace, &mut p);
    let p95 = p95_ms(&baseline.dispatch_ms_by_frame);
    println!("calibrated p95 frame latency: {p95:.3} ms");

    println!("\n=== SLO breach sweep vs deadline ===");
    let sweep_rows = sweep_arm(&opts, &baseline, p95);

    println!("\n=== supervised fleet aggregation ===");
    // Half the calibrated p95: tight enough that shards see breaches.
    let fleet_deadline = p95 * 0.5;
    let (fleet_path, shard_rows) = fleet_arm(&opts, &baseline, fleet_deadline);
    println!("  fleet summary: {}", fleet_path.display());

    let body = vec![
        ("calibrated_p95_ms", p95.into()),
        ("slo_window_frames", WINDOW.into()),
        ("sweep", Json::Arr(sweep_rows)),
        ("fleet_deadline_ms", fleet_deadline.into()),
        ("fleet_shards", Json::Arr(shard_rows)),
        (
            "baseline_digest",
            format!("{:016x}", baseline.deterministic_digest()).into(),
        ),
    ];
    emit_bench_json("fig_slo", &bench_envelope("fig_slo", &opts, body));
    println!("\nfig_slo: monitored == unmonitored on every run; fleet reconciled exactly");
}
