//! Spatially sharded dispatch at metropolis scale: per-region deferred
//! acceptance with exact seeded reconciliation, swept over shard counts.
//!
//! Builds one synthetic frame at constant city density (100k taxis ×
//! 100k open requests at `--scale 1`, the paper's workload blown up
//! 100×) and dispatches it three ways per NSTD variant: the global
//! sparse path, and the sharded path at several `ShardSpec` targets.
//! **Every timed row first asserts the sharded schedule bit-identical
//! to the global one** — the shard geometry only moves work around, the
//! seeded reconciliation pass guarantees the fixpoint is the same.
//!
//! Two costs are reported per row, because this machine may have fewer
//! cores than shards:
//!
//! * `critical_path_ms` — `partition + max_shard + reconcile`, the
//!   matching-stage wall a machine with ≥ shards cores would pay
//!   (sparse candidate generation is excluded: it is shared by both
//!   paths and already data-parallel). `shard_stage_speedup`
//!   (`sum_shard / max_shard`, both measured) is the scaling headline:
//!   the per-shard deferred-acceptance work divides near-linearly
//!   across occupied shards. The seeded reconciliation pass is the
//!   serial floor the critical path bottoms out at — it verifies the
//!   whole seed, so it costs on the order of a global warm verify
//!   regardless of shard count. `speedup_critical` compares the
//!   critical path against the global run with the same shared prep
//!   cost subtracted.
//! * `wall_ms_*` — the honest measured wall on *this* machine, which
//!   pays `sum_shard` when cores are scarce and always pays the
//!   reconciliation pass on top. Sharding can lose on wall-clock here;
//!   see `DESIGN.md` §9 for when and why.
//!
//! Greedy-nearest gets the same treatment at a capped size (its dense
//! baseline is Θ(|T|·|R|) and would dwarf the run at 100k²).
//!
//! Output: `results/BENCH_sharded.json`.

use o2o_bench::{bench_envelope, emit_bench_json, ExperimentOpts, Json};
use o2o_core::{build_taxi_grid, CandidateMode, NonSharingDispatcher, ShardSpec, ShardStats};
use o2o_geo::{Euclidean, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One frame: `n` taxis and `m` requests uniform over a square city
/// whose side keeps taxi density constant as `n` grows (20 km at 250
/// taxis — 400 km at 100k). Urban-length trips (1–6 km) keep the
/// interaction radius city-local, which is what makes spatial sharding
/// meaningful: regions are sized by that radius, so a constant-density
/// city yields shard counts that grow with area.
fn frame(seed: u64, n: usize, m: usize) -> (Vec<Taxi>, Vec<Request>) {
    let side = 20.0 * (n as f64 / 250.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(-side / 2.0..side / 2.0),
            rng.gen_range(-side / 2.0..side / 2.0),
        )
    };
    let taxis = (0..n)
        .map(|i| Taxi::new(TaxiId(i as u64), pt(&mut rng)))
        .collect();
    let requests = (0..m)
        .map(|j| {
            let pickup = pt(&mut rng);
            let len = rng.gen_range(1.0..6.0);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let dropoff = Point::new(pickup.x + len * angle.cos(), pickup.y + len * angle.sin());
            Request::new(RequestId(j as u64), 0, pickup, dropoff)
        })
        .collect();
    (taxis, requests)
}

/// Times `f` `reps` times, returning (min wall ms, median wall ms, and
/// the [`ShardStats`] of the fastest repetition).
fn time_sharded(reps: usize, mut f: impl FnMut() -> ShardStats) -> (f64, f64, ShardStats) {
    let mut best: Option<(f64, ShardStats)> = None;
    let mut walls: Vec<f64> = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        let stats = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        walls.push(ms);
        if best.is_none_or(|(b, _)| ms < b) {
            best = Some((ms, stats));
        }
    }
    walls.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let (min, stats) = best.expect("reps >= 1");
    (min, walls[walls.len() / 2], stats)
}

fn time_ms(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    let (min, med, _) = time_sharded(reps, || {
        f();
        ShardStats::default()
    });
    (min, med)
}

fn main() {
    let opts = ExperimentOpts::from_args(1.0);
    let n = opts.scaled_taxis(100_000);
    let m = opts.scaled_taxis(100_000);
    let (taxis, requests) = frame(opts.seed, n, m);
    let grid = build_taxi_grid(&taxis);
    let dispatcher = NonSharingDispatcher::new(Euclidean, opts.params)
        .with_candidate_mode(CandidateMode::Sparse)
        .with_parallelism(Parallelism::auto());
    let shard_targets = [4usize, 16, 64];
    let reps = if n >= 50_000 { 2 } else { 3 };

    println!(
        "{:>7} {:>7} {:>7} {:>7} {:>8} {:>9} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "variant",
        "shards",
        "occup",
        "bdry_t",
        "seeds",
        "part_ms",
        "max_shard",
        "sum_shard",
        "reconcile",
        "critical",
        "wall_min",
        "spd_shard"
    );
    let mut rows = Vec::new();
    for (variant, taxi_side) in [("nstd_p", false), ("nstd_t", true)] {
        // The unsharded reference: same sparse candidate generation, one
        // global deferred-acceptance pass.
        let run_global = || {
            if taxi_side {
                dispatcher.taxi_optimal_with_grid(&taxis, &requests, Some(&grid))
            } else {
                dispatcher.passenger_optimal_with_grid(&taxis, &requests, Some(&grid))
            }
        };
        let global = run_global();
        let (global_min, global_med) = time_ms(reps, || {
            std::hint::black_box(run_global());
        });

        for &target in &shard_targets {
            let spec = ShardSpec::new(target);
            let run = || {
                if taxi_side {
                    dispatcher.taxi_optimal_sharded(&taxis, &requests, Some(&grid), &spec)
                } else {
                    dispatcher.passenger_optimal_sharded(&taxis, &requests, Some(&grid), &spec)
                }
            };

            // Exactness gate: the row is only timed once the sharded
            // schedule is proven bit-identical to the global one.
            let (sharded, _) = run();
            assert_eq!(
                sharded, global,
                "sharded {variant} diverged from global at {n}x{m}, target {target}"
            );

            let (wall_min, wall_med, stats) = time_sharded(reps, || {
                let (s, stats) = run();
                std::hint::black_box(s);
                stats
            });
            let critical = stats.partition_ms + stats.max_shard_ms + stats.reconcile_ms;
            // Shared sparse-model build: everything in the sharded wall
            // that is not partition/shard/reconcile work. The global
            // path pays the same prep, so subtracting it from both
            // sides leaves a matching-stage vs matching-stage ratio.
            let prep =
                (wall_min - stats.partition_ms - stats.sum_shard_ms - stats.reconcile_ms).max(0.0);
            let global_match = (global_min - prep).max(0.0);
            let speedup_critical = global_match / critical.max(1e-3);
            let speedup_wall = global_min / wall_min;
            // Both sides measured on this machine: how well the shard
            // stage's work divides across shards.
            let shard_stage_speedup = stats.sum_shard_ms / stats.max_shard_ms.max(1e-3);
            println!(
                "{variant:>7} {target:>7} {:>7} {:>7} {:>8} {:>9.1} {:>12.1} {:>12.1} {:>12.1} \
                 {critical:>12.1} {wall_min:>12.1} {shard_stage_speedup:>9.2}",
                stats.occupied,
                stats.boundary_taxis,
                stats.seed_pairs,
                stats.partition_ms,
                stats.max_shard_ms,
                stats.sum_shard_ms,
                stats.reconcile_ms,
            );
            rows.push(Json::obj(vec![
                ("variant", variant.into()),
                ("n_taxis", n.into()),
                ("n_requests", m.into()),
                ("target_shards", target.into()),
                ("regions", stats.regions.into()),
                ("occupied_shards", stats.occupied.into()),
                ("boundary_taxis", stats.boundary_taxis.into()),
                ("boundary_requests", stats.boundary_requests.into()),
                ("seed_pairs", stats.seed_pairs.into()),
                ("partition_ms", stats.partition_ms.into()),
                ("max_shard_ms", stats.max_shard_ms.into()),
                ("sum_shard_ms", stats.sum_shard_ms.into()),
                ("reconcile_ms", stats.reconcile_ms.into()),
                ("critical_path_ms", critical.into()),
                ("prep_ms_est", prep.into()),
                ("global_match_ms_est", global_match.into()),
                ("wall_ms_min", wall_min.into()),
                ("wall_ms_median", wall_med.into()),
                ("global_ms_min", global_min.into()),
                ("global_ms_median", global_med.into()),
                ("shard_stage_speedup", shard_stage_speedup.into()),
                ("speedup_critical", speedup_critical.into()),
                ("speedup_wall", speedup_wall.into()),
                ("matches_global", true.into()),
            ]));
        }
    }

    // Greedy-nearest: the dense baseline is a full |T| scan per request,
    // so the comparison is capped — the point is the identical schedule
    // and the padded-set scan cost, not a 10^10-op dense run.
    let greedy_cap = 20_000.min(n);
    let (g_taxis, g_requests) = if greedy_cap == n {
        (taxis, requests)
    } else {
        frame(opts.seed.wrapping_add(1), greedy_cap, greedy_cap)
    };
    let dense_dispatcher =
        NonSharingDispatcher::new(Euclidean, opts.params).with_parallelism(Parallelism::auto());
    let greedy_reps = if greedy_cap >= 10_000 { 2 } else { 3 };
    let mut greedy_rows = Vec::new();
    let dense = dense_dispatcher.greedy_nearest(&g_taxis, &g_requests);
    let (dense_min, dense_med) = time_ms(greedy_reps, || {
        std::hint::black_box(dense_dispatcher.greedy_nearest(&g_taxis, &g_requests));
    });
    for &target in &shard_targets {
        let spec = ShardSpec::new(target);
        let (sharded, _) = dense_dispatcher.greedy_nearest_sharded(&g_taxis, &g_requests, &spec);
        assert_eq!(
            sharded, dense,
            "sharded greedy diverged from dense at {greedy_cap}, target {target}"
        );
        let (wall_min, wall_med, stats) = time_sharded(greedy_reps, || {
            let (s, stats) = dense_dispatcher.greedy_nearest_sharded(&g_taxis, &g_requests, &spec);
            std::hint::black_box(s);
            stats
        });
        println!(
            "{:>7} {target:>7} {:>7} {:>7} {:>8} {:>9.1} {:>12.1} {:>12.1} {:>12.1} {:>12.1} \
             {wall_min:>12.1} {:>9.2}",
            "greedy",
            stats.occupied,
            stats.boundary_taxis,
            stats.seed_pairs,
            stats.partition_ms,
            stats.max_shard_ms,
            stats.sum_shard_ms,
            stats.reconcile_ms,
            stats.partition_ms + stats.max_shard_ms,
            dense_min / wall_min,
        );
        greedy_rows.push(Json::obj(vec![
            ("variant", "greedy_nearest".into()),
            ("n_taxis", greedy_cap.into()),
            ("n_requests", greedy_cap.into()),
            ("target_shards", target.into()),
            ("regions", stats.regions.into()),
            ("occupied_shards", stats.occupied.into()),
            ("partition_ms", stats.partition_ms.into()),
            ("scan_ms", stats.sum_shard_ms.into()),
            ("wall_ms_min", wall_min.into()),
            ("wall_ms_median", wall_med.into()),
            ("dense_ms_min", dense_min.into()),
            ("dense_ms_median", dense_med.into()),
            ("speedup_wall", (dense_min / wall_min).into()),
            ("matches_dense", true.into()),
        ]));
    }

    emit_bench_json(
        "sharded",
        &bench_envelope(
            "sharded",
            &opts,
            vec![
                ("rows", Json::Arr(rows)),
                ("greedy_rows", Json::Arr(greedy_rows)),
            ],
        ),
    );
}
