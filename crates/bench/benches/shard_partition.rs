//! Criterion micro-benchmarks for [`ShardPlan`]: building the spatial
//! partition (region assignment + boundary-band classification) and
//! extracting the padded per-region taxi sets the sharded greedy path
//! scans. Both are per-frame overheads the sharded dispatch pipeline
//! pays before any matching runs, so their cost versus entity count is
//! what decides when sharding is worth engaging.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use o2o_core::{PreferenceParams, ShardPlan, ShardSpec};
use o2o_geo::{Euclidean, Metric, Point};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A constant-density synthetic frame (20 km city at 250 taxis, growing
/// with `sqrt(n)`), matching the `fig_sharded` workload shape.
fn frame(seed: u64, n: usize) -> (Vec<Taxi>, Vec<Request>, Vec<f64>) {
    let side = 20.0 * (n as f64 / 250.0).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    let pt = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(-side / 2.0..side / 2.0),
            rng.gen_range(-side / 2.0..side / 2.0),
        )
    };
    let taxis: Vec<Taxi> = (0..n)
        .map(|i| Taxi::new(TaxiId(i as u64), pt(&mut rng)))
        .collect();
    let requests: Vec<Request> = (0..n)
        .map(|j| {
            let pickup = pt(&mut rng);
            let len = rng.gen_range(1.0..6.0);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let dropoff = Point::new(pickup.x + len * angle.cos(), pickup.y + len * angle.sin());
            Request::new(RequestId(j as u64), 0, pickup, dropoff)
        })
        .collect();
    let trips = requests
        .iter()
        .map(|r| Euclidean.distance(r.pickup, r.dropoff))
        .collect();
    (taxis, requests, trips)
}

fn bench_shard_partition(c: &mut Criterion) {
    let params = PreferenceParams::paper();
    let mut group = c.benchmark_group("shard_partition");
    for &(n, target) in &[(2_000usize, 16usize), (20_000, 16), (20_000, 64)] {
        let (taxis, requests, trips) = frame((n + target) as u64, n);
        let spec = ShardSpec::new(target);
        group.bench_with_input(
            BenchmarkId::new("build", format!("{n}x{target}")),
            &n,
            |b, _| {
                b.iter(|| ShardPlan::build(&spec, &params, &taxis, &requests, &trips));
            },
        );
        let plan = ShardPlan::build(&spec, &params, &taxis, &requests, &trips);
        group.bench_with_input(
            BenchmarkId::new("padded_taxi_sets", format!("{n}x{target}")),
            &n,
            |b, _| {
                b.iter(|| plan.padded_taxi_sets(&taxis));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_partition);
criterion_main!(benches);
