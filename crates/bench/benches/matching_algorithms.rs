//! Criterion micro-benchmarks for the matching substrate: deferred
//! acceptance, Algorithm 2 enumeration, Hungarian, bottleneck and
//! Hopcroft–Karp.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use o2o_matching::hungarian::CostMatrix;
use o2o_matching::{
    bottleneck_assignment, max_bipartite_matching, min_cost_assignment, StableInstance,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut StdRng, np: usize, nr: usize, truncate: bool) -> StableInstance {
    let mut side = |n: usize, m: usize| -> Vec<Vec<usize>> {
        (0..n)
            .map(|_| {
                let mut all: Vec<usize> = (0..m).collect();
                all.shuffle(rng);
                if truncate {
                    let keep = rng.gen_range(m / 2..=m);
                    all.truncate(keep);
                }
                all
            })
            .collect()
    };
    let p = side(np, nr);
    let r = side(nr, np);
    StableInstance::new(p, r).expect("valid random instance")
}

fn bench_gale_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("gale_shapley_propose");
    for &n in &[50usize, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = random_instance(&mut rng, n, n, true);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| inst.propose());
        });
    }
    group.finish();
}

fn bench_all_matchings(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm2_enumerate_all");
    for &n in &[6usize, 8, 10] {
        // Complete (untruncated) preferences maximise the lattice size.
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = random_instance(&mut rng, n, n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| inst.enumerate_all(Some(256)));
        });
    }
    group.finish();
}

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian_min_cost");
    for &n in &[50usize, 100, 200] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let costs = CostMatrix::from_fn(n, n, |_, _| rng.gen_range(0.0..100.0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &costs, |b, costs| {
            b.iter(|| min_cost_assignment(costs));
        });
    }
    group.finish();
}

fn bench_bottleneck(c: &mut Criterion) {
    let mut group = c.benchmark_group("bottleneck_assignment");
    for &n in &[50usize, 100] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let costs = CostMatrix::from_fn(n, n, |_, _| rng.gen_range(0.0..100.0));
        group.bench_with_input(BenchmarkId::from_parameter(n), &costs, |b, costs| {
            b.iter(|| bottleneck_assignment(costs));
        });
    }
    group.finish();
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopcroft_karp");
    for &n in &[100usize, 400] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                (0..n)
                    .filter(|_| rng.gen_bool(8.0 / n as f64))
                    .collect::<Vec<_>>()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &adj, |b, adj| {
            b.iter(|| max_bipartite_matching(n, adj));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gale_shapley,
    bench_all_matchings,
    bench_hungarian,
    bench_bottleneck,
    bench_hopcroft_karp
);
criterion_main!(benches);
