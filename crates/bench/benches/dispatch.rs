//! Criterion micro-benchmarks for the dispatch pipeline: one frame of
//! NSTD / STD, shared-route search and set packing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use o2o_core::shared_route::{best_route, best_route_within_detour};
use o2o_core::{NonSharingDispatcher, PreferenceParams, SharingDispatcher};
use o2o_geo::{Euclidean, Point};
use o2o_matching::{SetPacking, SetPackingStrategy};
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_frame(rng: &mut StdRng, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
    let taxis = (0..nt)
        .map(|i| {
            Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-7.0..7.0), rng.gen_range(-7.0..7.0)),
            )
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            let s = Point::new(rng.gen_range(-7.0..7.0), rng.gen_range(-7.0..7.0));
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let len = rng.gen_range(0.5..4.0);
            Request::new(
                RequestId(j as u64),
                0,
                s,
                Point::new(s.x + len * angle.cos(), s.y + len * angle.sin()),
            )
        })
        .collect();
    (taxis, requests)
}

fn bench_nstd_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("nstd_p_frame");
    for &(nt, nr) in &[(50usize, 100usize), (200, 200), (700, 400)] {
        let mut rng = StdRng::seed_from_u64(7);
        let (taxis, requests) = random_frame(&mut rng, nt, nr);
        let d = NonSharingDispatcher::new(Euclidean, PreferenceParams::paper());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nt}x{nr}")),
            &(taxis, requests),
            |b, (taxis, requests)| b.iter(|| d.passenger_optimal(taxis, requests)),
        );
    }
    group.finish();
}

fn bench_std_frame(c: &mut Criterion) {
    let mut group = c.benchmark_group("std_p_frame");
    group.sample_size(20);
    for &(nt, nr) in &[(20usize, 60usize), (50, 150)] {
        let mut rng = StdRng::seed_from_u64(11);
        let (taxis, requests) = random_frame(&mut rng, nt, nr);
        let d = SharingDispatcher::new(Euclidean, PreferenceParams::paper());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nt}x{nr}")),
            &(taxis, requests),
            |b, (taxis, requests)| b.iter(|| d.dispatch_passenger_optimal(taxis, requests)),
        );
    }
    group.finish();
}

fn bench_shared_route(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let (_, requests) = random_frame(&mut rng, 1, 4);
    c.bench_function("shared_route/pair", |b| {
        b.iter(|| best_route(&Euclidean, &requests[0..2]))
    });
    c.bench_function("shared_route/triple", |b| {
        b.iter(|| best_route(&Euclidean, &requests[0..3]))
    });
    c.bench_function("shared_route/triple_constrained", |b| {
        b.iter(|| best_route_within_detour(&Euclidean, None, &requests[0..3], 5.0))
    });
}

fn bench_set_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_packing");
    let mut rng = StdRng::seed_from_u64(5);
    let n_items = 120;
    let sets: Vec<Vec<usize>> = (0..400)
        .map(|_| {
            let a = rng.gen_range(0..n_items);
            let b = (a + rng.gen_range(1..6)) % n_items;
            if rng.gen_bool(0.3) {
                let c = (b + rng.gen_range(1..6)) % n_items;
                if c != a && c != b && a != b {
                    return vec![a, b, c];
                }
            }
            if a == b {
                vec![a, (a + 1) % n_items]
            } else {
                vec![a, b]
            }
        })
        .collect();
    let inst = SetPacking::new(n_items, sets).expect("valid sets");
    for (name, strategy) in [
        ("greedy", SetPackingStrategy::Greedy),
        ("local_search", SetPackingStrategy::LocalSearch),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| inst.pack(strategy))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_nstd_frame,
    bench_std_frame,
    bench_shared_route,
    bench_set_packing
);
criterion_main!(benches);
