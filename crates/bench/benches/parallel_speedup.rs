//! Sequential vs parallel dispatch pipeline, plus distance caching.
//!
//! Measures the three parallelized stages at `threads = 1, 2, 4` over the
//! same frame — results are bit-identical across thread counts, so the
//! only thing compared is wall-clock — and the per-frame distance cache
//! over an artificially expensive metric (standing in for a road-network
//! shortest-path query). Speedups are derived from the medians and
//! written to `results/BENCH_parallel_speedup.json`; on a single-core
//! machine expect ratios near 1.0 for threads and > 1 for the cache.

use criterion::{BenchmarkId, Criterion};
use o2o_bench::{emit_bench_json, Json};
use o2o_core::{PickupDistances, PreferenceModel, PreferenceParams, SharingDispatcher};
use o2o_geo::{DistanceCache, Euclidean, Metric, Point};
use o2o_par::Parallelism;
use o2o_trace::{Request, RequestId, Taxi, TaxiId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 3] = [1, 2, 4];

fn random_frame(seed: u64, nt: usize, nr: usize) -> (Vec<Taxi>, Vec<Request>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let taxis = (0..nt)
        .map(|i| {
            Taxi::new(
                TaxiId(i as u64),
                Point::new(rng.gen_range(-7.0..7.0), rng.gen_range(-7.0..7.0)),
            )
        })
        .collect();
    let requests = (0..nr)
        .map(|j| {
            let s = Point::new(rng.gen_range(-7.0..7.0), rng.gen_range(-7.0..7.0));
            Request::new(
                RequestId(j as u64),
                0,
                s,
                Point::new(
                    s.x + rng.gen_range(-3.0..3.0),
                    s.y + rng.gen_range(-3.0..3.0),
                ),
            )
        })
        .collect();
    (taxis, requests)
}

/// A deliberately expensive metric: Euclidean, but integrated over many
/// segments — the cost profile of a shortest-path query without needing
/// a road graph in a micro-benchmark.
#[derive(Debug, Clone, Copy)]
struct ExpensiveMetric;

impl Metric for ExpensiveMetric {
    fn distance(&self, a: Point, b: Point) -> f64 {
        let steps = 64;
        let mut total = 0.0;
        let mut prev = a;
        for i in 1..=steps {
            let t = f64::from(i) / f64::from(steps);
            let p = Point::new(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t);
            total += prev.euclidean(p);
            prev = p;
        }
        total
    }
}

fn bench_preference_build(c: &mut Criterion) {
    let (taxis, requests) = random_frame(21, 250, 250);
    let params = PreferenceParams::paper().with_passenger_threshold(9.0);
    let mut group = c.benchmark_group("preference_build");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &Parallelism::fixed(threads),
            |b, &par| {
                b.iter(|| {
                    PreferenceModel::build_with(&Euclidean, &params, &taxis, &requests, par, None)
                })
            },
        );
    }
    group.finish();
}

fn bench_pickup_matrix(c: &mut Criterion) {
    let (taxis, requests) = random_frame(22, 400, 400);
    let mut group = c.benchmark_group("pickup_matrix");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &Parallelism::fixed(threads),
            |b, &par| b.iter(|| PickupDistances::compute(&Euclidean, &taxis, &requests, par)),
        );
    }
    group.finish();
}

fn bench_sharing_stage1(c: &mut Criterion) {
    let (_, requests) = random_frame(23, 1, 150);
    let params = PreferenceParams::paper().with_detour_threshold(5.0);
    let mut group = c.benchmark_group("sharing_stage1");
    group.sample_size(10);
    for threads in THREADS {
        let d =
            SharingDispatcher::new(Euclidean, params).with_parallelism(Parallelism::fixed(threads));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("threads_{threads}")),
            &requests,
            |b, requests| b.iter(|| d.feasible_groups(requests)),
        );
    }
    group.finish();
}

fn bench_distance_cache(c: &mut Criterion) {
    let (taxis, requests) = random_frame(24, 20, 60);
    let params = PreferenceParams::paper().with_detour_threshold(5.0);
    let mut group = c.benchmark_group("distance_cache");
    group.sample_size(10);
    let plain = SharingDispatcher::new(ExpensiveMetric, params);
    group.bench_function("uncached", |b| {
        b.iter(|| plain.dispatch_passenger_optimal(&taxis, &requests))
    });
    let cached = SharingDispatcher::new(DistanceCache::new(ExpensiveMetric), params);
    group.bench_function("cached", |b| {
        b.iter(|| {
            // Cleared every iteration: each measured pass pays the same
            // cold-start a fresh frame would.
            cached.metric().clear();
            cached.dispatch_passenger_optimal(&taxis, &requests)
        })
    });
    group.finish();
}

/// `group/x` median in nanoseconds, if measured.
fn median_ns(c: &Criterion, key: &str) -> Option<f64> {
    c.results()
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, s)| s.median.as_nanos() as f64)
}

fn emit_results(c: &Criterion) {
    let measurements = Json::Obj(
        c.results()
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("min_ns", (s.min.as_nanos() as f64).into()),
                        ("median_ns", (s.median.as_nanos() as f64).into()),
                        ("mean_ns", (s.mean.as_nanos() as f64).into()),
                    ]),
                )
            })
            .collect(),
    );
    // Speedups of each parallel configuration over its own sequential
    // baseline (median over median).
    let mut speedups = Vec::new();
    for group in ["preference_build", "pickup_matrix", "sharing_stage1"] {
        if let Some(base) = median_ns(c, &format!("{group}/threads_1")) {
            for threads in THREADS.iter().skip(1) {
                if let Some(par) = median_ns(c, &format!("{group}/threads_{threads}")) {
                    speedups.push((format!("{group}/threads_{threads}"), Json::Num(base / par)));
                }
            }
        }
    }
    if let (Some(plain), Some(cached)) = (
        median_ns(c, "distance_cache/uncached"),
        median_ns(c, "distance_cache/cached"),
    ) {
        speedups.push(("distance_cache".into(), Json::Num(plain / cached)));
    }
    let payload = Json::obj(vec![
        ("bench", "parallel_speedup".into()),
        (
            "available_parallelism",
            std::thread::available_parallelism()
                .map(|n| Json::from(n.get()))
                .unwrap_or(Json::Null),
        ),
        ("measurements", measurements),
        ("speedup_vs_sequential", Json::Obj(speedups)),
    ]);
    emit_bench_json("parallel_speedup", &payload);
}

fn main() {
    let mut c = Criterion::default();
    bench_preference_build(&mut c);
    bench_pickup_matrix(&mut c);
    bench_sharing_stage1(&mut c);
    bench_distance_cache(&mut c);
    emit_results(&c);
}
