//! Criterion micro-benchmarks for the rank-table layouts behind
//! [`StableInstance`]: the per-agent hashmap reference, the flat CSR
//! layout that replaced it on the sparse dispatch path, and the dense
//! matrix. Each layout answers the same mixed hit/miss lookup stream —
//! the access pattern deferred acceptance issues when reviewers compare
//! an incumbent against a challenger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use o2o_matching::StableInstance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Truncated random lists with the sparse dispatch path's typical
/// density (a few dozen candidates per agent at city scale).
fn truncated_lists(rng: &mut StdRng, n: usize, row_len: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|_| {
            let mut all: Vec<usize> = (0..n).collect();
            all.shuffle(rng);
            all.truncate(row_len.min(n));
            all
        })
        .collect()
}

/// A query stream mixing ranked pairs (hits) with random pairs (mostly
/// misses under truncation), as deferred acceptance produces.
fn queries(rng: &mut StdRng, lists: &[Vec<usize>], count: usize) -> Vec<(usize, usize)> {
    (0..count)
        .map(|_| {
            let p = rng.gen_range(0..lists.len());
            if rng.gen_bool(0.5) && !lists[p].is_empty() {
                (p, lists[p][rng.gen_range(0..lists[p].len())])
            } else {
                (p, rng.gen_range(0..lists.len()))
            }
        })
        .collect()
}

fn bench_rank_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rank_lookup");
    for &(n, row_len) in &[(500usize, 32usize), (2000, 32), (2000, 1500)] {
        let mut rng = StdRng::seed_from_u64((n + row_len) as u64);
        let p_lists = truncated_lists(&mut rng, n, row_len);
        let r_lists = truncated_lists(&mut rng, n, row_len);
        let stream = queries(&mut rng, &p_lists, 4096);
        let layouts = [
            (
                "hashmap",
                StableInstance::new_sparse_reference(p_lists.clone(), r_lists.clone()).unwrap(),
            ),
            (
                "csr",
                StableInstance::new_sparse(p_lists.clone(), r_lists.clone()).unwrap(),
            ),
            (
                "dense",
                StableInstance::new(p_lists.clone(), r_lists.clone()).unwrap(),
            ),
        ];
        for (label, inst) in layouts {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{n}x{row_len}")),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let mut acc = 0u64;
                        for &(p, r) in &stream {
                            acc = acc.wrapping_add(u64::from(
                                inst.proposer_rank_of(p, r).unwrap_or(u32::MAX),
                            ));
                        }
                        acc
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rank_lookup);
criterion_main!(benches);
