//! Criterion benchmark for whole-day simulation throughput per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use o2o_bench::PolicyKind;
use o2o_core::PreferenceParams;
use o2o_sim::{SimConfig, Simulator};
use o2o_trace::boston_september_2012;

fn bench_simulated_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_day_boston_2pct");
    group.sample_size(10);
    let trace = boston_september_2012(0.02).taxis(4).generate(1);
    for kind in [
        PolicyKind::NstdP,
        PolicyKind::Near,
        PolicyKind::Pair,
        PolicyKind::StdP,
        PolicyKind::Raii,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut policy = kind.build(PreferenceParams::paper());
                    Simulator::new(SimConfig::default()).run(trace, &mut policy)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_day);
criterion_main!(benches);
