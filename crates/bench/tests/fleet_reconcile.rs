//! Fleet aggregation reconciles exactly with its source streams.
//!
//! Several simulator runs — one per shard, each with a manifest-stamped
//! JSONL telemetry stream and live SLO specs — are merged by
//! [`write_fleet_json`] into one `FLEET_*.json`. The merged summary must
//! restate the children's numbers exactly: per-shard frame counts, span
//! self-time totals, SLO breach tallies, and counter totals, with fleet
//! totals equal to the shard sums. No tolerance, no sampling.

use o2o_bench::{write_fleet_json, Json};
use o2o_core::PreferenceParams;
use o2o_geo::Euclidean;
use o2o_obs::{FleetMeta, FleetOptions, JsonlSink, Recorder, SloMetric, SloSpec};
use o2o_sim::{policy, SimConfig, SimReport, Simulator};
use std::path::PathBuf;

const SHARDS: u32 = 3;

fn run_shard(run_id: &str, shard: u32, log: &PathBuf) -> SimReport {
    let seed = 100 + u64::from(shard);
    let trace = o2o_trace::boston_september_2012(0.002).generate(seed);
    let sink = JsonlSink::create(log)
        .expect("create stream")
        .with_meta(FleetMeta::new(run_id, shard, seed));
    let mut p = policy::nstd_p(Euclidean, PreferenceParams::default());
    Simulator::new(SimConfig::default())
        .with_recorder(Recorder::with_sink(Box::new(sink)))
        .with_slo(vec![
            // A 0 ms p50 ceiling breaches as soon as the window fills,
            // so every shard carries a non-trivial SLO timeline.
            SloSpec::max("p50-zero", SloMetric::FrameP50Ms, 0.0, 4),
            SloSpec::min("served", SloMetric::ServedRatio, 0.05, 8),
        ])
        .run(&trace, &mut p)
}

#[test]
fn fleet_summary_reconciles_exactly_with_child_streams() {
    let work = std::env::temp_dir().join(format!("o2o-fleet-reconcile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("workdir");
    let run_id = "reconcile-run";
    let name = format!("fleet_reconcile_test_{}", std::process::id());

    let logs: Vec<PathBuf> = (0..SHARDS)
        .map(|s| work.join(format!("shard-{s}.jsonl")))
        .collect();
    let reports: Vec<SimReport> = (0..SHARDS)
        .map(|s| run_shard(run_id, s, &logs[s as usize]))
        .collect();

    let opts = FleetOptions::default();
    let (path, fleet) = write_fleet_json(&name, &logs, &opts).expect("streams parse and merge");
    assert_eq!(fleet.run_id, run_id);
    assert_eq!(fleet.shards.len(), SHARDS as usize);

    // Per-shard reconciliation against both the in-process reports and
    // an independent re-parse of each stream.
    let mut frames_sum = 0u64;
    let mut self_ms_sum = 0.0f64;
    for (shard, report) in reports.iter().enumerate() {
        let summary = fleet
            .shards
            .iter()
            .find(|s| s.meta.shard_id == shard as u32)
            .expect("shard in summary");
        // Frame counts: the stream records one frame window per
        // dispatched frame; the summary must agree with the report.
        assert_eq!(
            summary.frames,
            report.stage_breakdown.frames.len() as u64,
            "shard {shard} frame count"
        );
        // SLO tallies: breach/recover counts match the report's events.
        let breaches = report.slo_events.iter().filter(|e| e.is_breach()).count() as u64;
        assert_eq!(summary.breaches, breaches, "shard {shard} breaches");
        assert_eq!(
            summary.recoveries,
            report.slo_events.len() as u64 - breaches,
            "shard {shard} recoveries"
        );
        assert!(summary.breaches > 0, "the 0 ms ceiling must breach");
        // Counter totals are integers end to end: exact equality with
        // the report's derived totals.
        for (counter, total) in &summary.counter_totals {
            assert_eq!(
                *total,
                report.stage_breakdown.counter_total(counter),
                "shard {shard} counter {counter}"
            );
        }
        // Span totals: the summary restates the parsed stream exactly.
        let text = std::fs::read_to_string(&logs[shard]).expect("stream readable");
        let telemetry = o2o_obs::fleet::parse_shard_str(&text, &opts).expect("stream parses");
        assert_eq!(telemetry.span_starts, telemetry.span_ends, "spans balance");
        assert_eq!(summary.frames, telemetry.frames());
        assert_eq!(
            summary.total_self_ms,
            telemetry.breakdown.total_self_ms(),
            "shard {shard} span totals"
        );
        frames_sum += summary.frames;
        self_ms_sum += summary.total_self_ms;
    }

    // Fleet totals are the shard sums.
    assert_eq!(fleet.frames, frames_sum);
    assert!((fleet.total_self_ms - self_ms_sum).abs() < 1e-9);
    let latency_count: u64 = fleet.latency.counts.iter().sum();
    assert_eq!(
        fleet.latency.count, latency_count,
        "pooled histogram is self-consistent"
    );
    assert_eq!(
        fleet.latency.count, frames_sum,
        "one latency sample per dispatched frame"
    );

    // The written document round-trips and restates the same numbers.
    let doc = Json::parse(&std::fs::read_to_string(&path).expect("fleet file"))
        .expect("fleet file parses");
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(f64::from(o2o_obs::SCHEMA_VERSION))
    );
    assert_eq!(
        doc.get("frames").and_then(Json::as_f64),
        Some(frames_sum as f64)
    );
    let shards_json = doc.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(shards_json.len(), SHARDS as usize);
    for sj in shards_json {
        let id = sj.get("shard_id").and_then(Json::as_f64).expect("id") as u32;
        let summary = fleet.shards.iter().find(|s| s.meta.shard_id == id).unwrap();
        assert_eq!(
            sj.get("frames").and_then(Json::as_f64),
            Some(summary.frames as f64)
        );
        assert_eq!(
            sj.get("slo_breaches").and_then(Json::as_f64),
            Some(summary.breaches as f64)
        );
        assert!(
            !sj.get("slo_events")
                .and_then(Json::as_arr)
                .expect("timeline")
                .is_empty(),
            "per-shard breach timeline rides along"
        );
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn fleet_merge_rejects_mixed_runs_and_missing_streams() {
    let work = std::env::temp_dir().join(format!("o2o-fleet-reject-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("workdir");
    let name = format!("fleet_reject_test_{}", std::process::id());

    // No streams at all: an explicit error, not an empty summary.
    assert!(write_fleet_json(
        &name,
        &[work.join("absent.jsonl")],
        &FleetOptions::default()
    )
    .is_err());

    // Two shards from *different* runs must refuse to merge.
    let a = work.join("a.jsonl");
    let b = work.join("b.jsonl");
    run_shard("run-a", 0, &a);
    run_shard("run-b", 1, &b);
    let err = write_fleet_json(&name, &[a.clone(), b], &FleetOptions::default()).unwrap_err();
    assert!(err.contains("run"), "{err}");

    // A missing stream among valid ones is skipped (quarantined child).
    let (path, fleet) = write_fleet_json(
        &name,
        &[a, work.join("still-absent.jsonl")],
        &FleetOptions::default(),
    )
    .expect("one valid stream suffices");
    assert_eq!(fleet.shards.len(), 1);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&work);
}
