//! Simulate a full day of a commuter city and compare NSTD-P against the
//! greedy baseline, hour by hour — the workload the paper's introduction
//! motivates (rush hours at 9am and 6pm).
//!
//! Run with `cargo run --release --example city_day`.

use o2o_taxi::core::PreferenceParams;
use o2o_taxi::geo::Euclidean;
use o2o_taxi::sim::{policy, SimConfig, Simulator};
use o2o_taxi::trace::boston_september_2012;

fn main() {
    // A 20 %-scale Boston day: ~2,700 requests, 40 taxis, rush-hour peaks.
    let trace = boston_september_2012(0.2).taxis(40).generate(7);
    println!(
        "trace {}: {} requests, {} taxis over {} hours",
        trace.name,
        trace.requests.len(),
        trace.taxis.len(),
        trace.duration() / 3600 + 1,
    );

    let sim = Simulator::new(SimConfig::default());
    let params = PreferenceParams::default();

    let mut nstd = policy::nstd_p(Euclidean, params);
    let mut near = policy::near(Euclidean, params);
    let stable = sim.run(&trace, &mut nstd);
    let greedy = sim.run(&trace, &mut near);

    for report in [&stable, &greedy] {
        println!(
            "\n{}: served {}/{} | avg delay {:.1} min | avg passenger dis. {:.2} km | \
             avg taxi dis. {:.2} km",
            report.policy,
            report.served,
            report.served + report.unserved_at_end,
            report.avg_delay_min(),
            report.avg_passenger_dissatisfaction(),
            report.avg_taxi_dissatisfaction(),
        );
    }

    // Hour-of-day view (the paper's Fig. 7): the 9am and 6pm peaks are
    // where dispatching quality matters most.
    println!("\nhour | NSTD-P delay | Near delay   (minutes)");
    let a = stable.hourly_delay().values;
    let b = greedy.hourly_delay().values;
    for h in 0..24 {
        let bar = "#".repeat((a[h].min(30.0)) as usize);
        println!("{h:>4} | {:>12.1} | {:>10.1}  {bar}", a[h], b[h]);
    }
    println!(
        "\npeak NSTD-P delay hour: {}h (rush hours are 9h and 18h)",
        stable.hourly_delay().peak_hour()
    );
}
