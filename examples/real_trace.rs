//! Working with real trace files: export, import, inspect, dispatch.
//!
//! The experiments ship with synthetic NYC/Boston generators, but any real
//! trace can be used after projecting it to the CSV format of
//! `o2o_trace::csv_io` (km coordinates, seconds since epoch). This example
//! round-trips a trace through CSV, prints its descriptive statistics, and
//! replays it through NSTD-P.
//!
//! Run with `cargo run --release --example real_trace`.

use o2o_taxi::core::PreferenceParams;
use o2o_taxi::geo::Euclidean;
use o2o_taxi::sim::{policy, SimConfig, Simulator};
use o2o_taxi::trace::{boston_september_2012, csv_io, Trace, TraceStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stand-in for a real export: a 2 %-scale Boston day.
    let trace = boston_september_2012(0.02).taxis(5).generate(99);

    // Export to the interchange CSV…
    let path = std::env::temp_dir().join("o2o-taxi-example-trace.csv");
    let mut file = std::fs::File::create(&path)?;
    csv_io::write_requests(&mut file, &trace.requests)?;
    println!(
        "wrote {} requests to {}",
        trace.requests.len(),
        path.display()
    );

    // …and load it back, as you would with a projected real-world file.
    let requests = csv_io::read_requests(std::fs::File::open(&path)?)?;
    let loaded = Trace {
        name: "loaded-from-csv".into(),
        bbox: trace.bbox,
        requests,
        taxis: trace.taxis.clone(),
    };
    loaded.validate().map_err(std::io::Error::other)?;

    // Inspect before simulating: does the workload look like the city you
    // think it is?
    println!("\n{}", TraceStats::of(&loaded));

    // Replay through the paper's Algorithm 1.
    let mut nstd = policy::nstd_p(Euclidean, PreferenceParams::default());
    let report = Simulator::new(SimConfig::default()).run(&loaded, &mut nstd);
    println!(
        "\nNSTD-P replay: served {}/{} | avg delay {:.1} min | peak queue {} | avg idle {:.1}",
        report.served,
        report.served + report.unserved_at_end,
        report.avg_delay_min(),
        report.peak_queue(),
        report.avg_idle_taxis(),
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
