//! Enumerate *all* stable dispatch schedules of a frame (the paper's
//! Algorithm 2) and let the company pick one.
//!
//! Among all stable schedules, NSTD-P is best for passengers and NSTD-T
//! best for taxis; the company can select any stable schedule by its own
//! objective (§IV.D). By the rural-hospitals property (Theorem 2), the
//! *set* of served requests — and hence fare revenue — is the same in all
//! of them.
//!
//! Run with `cargo run --example stable_set`.

use o2o_taxi::core::{
    fare_revenue, CompanyObjective, FareModel, NonSharingDispatcher, PreferenceParams,
};
use o2o_taxi::geo::{Euclidean, Point};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};

fn main() {
    // A contested frame: preferences conflict, so several stable
    // schedules exist.
    let taxis = vec![
        Taxi::new(TaxiId(0), Point::new(0.0, 0.0)),
        Taxi::new(TaxiId(1), Point::new(6.0, 0.0)),
        Taxi::new(TaxiId(2), Point::new(3.0, 4.0)),
    ];
    let requests = vec![
        Request::new(RequestId(0), 0, Point::new(2.0, 0.0), Point::new(2.0, 8.0)),
        Request::new(RequestId(1), 0, Point::new(4.0, 0.0), Point::new(4.0, 3.0)),
        Request::new(RequestId(2), 0, Point::new(3.0, 2.0), Point::new(-3.0, 2.0)),
    ];

    let dispatcher = NonSharingDispatcher::new(Euclidean, PreferenceParams::unbounded());
    let all = dispatcher.all_schedules(&taxis, &requests, None);
    println!("found {} stable schedule(s)", all.len());

    let fare = FareModel::default();
    for (i, s) in all.iter().enumerate() {
        let pairs: Vec<String> = s.pairs().map(|(r, t)| format!("{r}->{t}")).collect();
        println!(
            "  S{i}: {:<28} passenger Σ {:.2} | taxi Σ {:+.2} | revenue ${:.2}",
            pairs.join(" "),
            s.total_passenger_dissatisfaction(),
            s.total_taxi_dissatisfaction(),
            fare_revenue(&Euclidean, &fare, &requests, s),
        );
    }

    // The company's pick, under different objectives.
    for objective in [
        CompanyObjective::PassengerWelfare,
        CompanyObjective::TaxiWelfare,
        CompanyObjective::Revenue(fare),
    ] {
        let s = dispatcher.company_optimal(&taxis, &requests, objective, None);
        let pairs: Vec<String> = s.pairs().map(|(r, t)| format!("{r}->{t}")).collect();
        println!("{objective:?} picks: {}", pairs.join(" "));
    }

    // Fairness extensions beyond the paper: the egalitarian schedule
    // minimises summed ranks of both sides; the median schedule gives
    // every request the median of its stable partners (Teo–Sethuraman).
    for (name, s) in [
        (
            "egalitarian",
            dispatcher.egalitarian(&taxis, &requests, None),
        ),
        ("median", dispatcher.median(&taxis, &requests, None)),
    ] {
        let pairs: Vec<String> = s.pairs().map(|(r, t)| format!("{r}->{t}")).collect();
        println!(
            "{name:>11} picks: {:<28} (passenger Σ {:.2}, taxi Σ {:+.2})",
            pairs.join(" "),
            s.total_passenger_dissatisfaction(),
            s.total_taxi_dissatisfaction(),
        );
    }
}
