//! Sharing dispatch (UberPool-style): pack compatible requests with
//! maximum set packing, then match packed groups to taxis stably —
//! the paper's Algorithm 3.
//!
//! Run with `cargo run --release --example ridesharing`.

use o2o_taxi::core::{PreferenceParams, SharingDispatcher};
use o2o_taxi::geo::{Euclidean, Point};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};

fn main() {
    let taxis = vec![
        Taxi::new(TaxiId(0), Point::new(-1.0, 0.0)),
        Taxi::new(TaxiId(1), Point::new(10.0, 5.0)),
    ];
    // A morning commute: three riders heading the same way downtown, one
    // going the opposite direction.
    let requests = vec![
        Request::new(RequestId(0), 0, Point::new(0.0, 0.0), Point::new(9.0, 0.5)),
        Request::new(RequestId(1), 0, Point::new(1.5, 0.3), Point::new(8.0, 0.0)),
        Request::new(RequestId(2), 0, Point::new(3.0, -0.2), Point::new(9.5, 0.2)),
        Request::new(RequestId(3), 0, Point::new(9.0, 5.0), Point::new(2.0, 6.0)),
    ];

    // θ = 5 km detour budget, α = β = 1 (the paper's settings).
    let dispatcher = SharingDispatcher::new(Euclidean, PreferenceParams::default());

    // Stage 1+2: which groups does maximum set packing form?
    let packing = dispatcher.pack(&requests);
    println!("packed groups (by request index): {packing:?}");

    // Stage 3: stable matching of groups to taxis (STD-P).
    let schedule = dispatcher.dispatch_passenger_optimal(&taxis, &requests);
    for a in &schedule.assignments {
        println!(
            "\ntaxi {} serves {} request(s), drives {:.2} km total:",
            a.taxi,
            a.members.len(),
            a.total_drive,
        );
        for stop in &a.route.stops {
            println!(
                "    {:?} member {} at {}",
                stop.kind, a.members[stop.member].0, stop.location
            );
        }
        for (i, &m) in a.members.iter().enumerate() {
            println!(
                "    {m}: waits {:.2} km of driving, detour {:.2} km",
                a.wait_distances[i], a.detours[i],
            );
        }
        println!("    driver score {:.2} (lower = happier)", a.taxi_cost);
    }
    if !schedule.unserved.is_empty() {
        println!("\nunserved this frame: {:?}", schedule.unserved);
    }
    println!(
        "\nsharing rate: {:.0}% of served requests ride together",
        schedule.sharing_rate() * 100.0
    );
}
