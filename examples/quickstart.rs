//! Quickstart: dispatch one frame of taxis with matching stability.
//!
//! Run with `cargo run --example quickstart`.

use o2o_taxi::core::{DispatchOutcome, NonSharingDispatcher, PreferenceParams};
use o2o_taxi::geo::{Euclidean, Point};
use o2o_taxi::trace::{Request, RequestId, Taxi, TaxiId};

fn main() {
    // Three idle taxis somewhere in the city…
    let taxis = vec![
        Taxi::new(TaxiId(0), Point::new(0.0, 0.0)),
        Taxi::new(TaxiId(1), Point::new(4.0, 1.0)),
        Taxi::new(TaxiId(2), Point::new(-2.0, 3.0)),
    ];
    // …and four passengers who just opened the app (pickup → dropoff).
    let requests = vec![
        Request::new(RequestId(0), 0, Point::new(1.0, 0.5), Point::new(7.0, 2.0)),
        Request::new(RequestId(1), 0, Point::new(3.5, 0.0), Point::new(3.5, 6.0)),
        Request::new(
            RequestId(2),
            0,
            Point::new(-1.0, 2.0),
            Point::new(-6.0, -1.0),
        ),
        Request::new(RequestId(3), 0, Point::new(0.5, 0.5), Point::new(2.0, 1.0)),
    ];

    // The paper's Algorithm 1: passenger-optimal stable dispatch.
    // Passengers rank taxis by wait; drivers weigh pick-up cost against
    // trip pay-off (α = 1); dummy thresholds let both sides refuse bad
    // matches.
    let dispatcher = NonSharingDispatcher::new(Euclidean, PreferenceParams::default());
    let schedule = dispatcher.passenger_optimal(&taxis, &requests);

    println!("NSTD-P (passenger-optimal stable dispatch):");
    for r in &requests {
        match schedule.assignment_of(r.id) {
            DispatchOutcome::Assigned(taxi) => println!(
                "  {} -> {}   (wait distance {:.2} km)",
                r.id,
                taxi,
                schedule.passenger_dissatisfaction(r.id).unwrap(),
            ),
            DispatchOutcome::Unserved => println!("  {} -> unserved this frame", r.id),
        }
    }
    for t in &taxis {
        if let Some(score) = schedule.taxi_dissatisfaction(t.id) {
            println!("  {} driver score {:.2} (lower = happier)", t.id, score);
        }
    }

    // The matching is *stable*: no passenger and driver would rather have
    // each other than their assigned partners.
    assert!(dispatcher.is_stable(&taxis, &requests, &schedule));
    println!("schedule verified stable ✓");
}
